open Expr

(* One top-level rewrite step applied to an already-recursively-simplified
   node. Returns [None] when no rule fires. *)
let step e =
  match e with
  (* ((x + c1) + c2)  -->  x + (c1 + c2); same with mixed add/sub. *)
  | Binop (Add, Binop (Add, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop Add x (const w (c1 + c2)))
  | Binop (Add, Binop (Sub, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop Add x (const w (c2 - c1)))
  | Binop (Sub, Binop (Add, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop Add x (const w (c1 - c2)))
  | Binop (Sub, Binop (Sub, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop Sub x (const w (c1 + c2)))
  (* Constant on the left of a commutative op: move right. *)
  | Binop (((Add | Mul | And | Or | Xor) as op), (Const _ as c), x)
    when not (is_const x) ->
      Some (binop op x c)
  (* (x + c == d)  -->  (x == d - c), and friends; addition on W32 is a
     bijection so equality/disequality transfer exactly. *)
  | Cmp ((Eq | Ne) as op, Binop (Add, x, Const (w, c)), Const (_, d)) ->
      Some (cmp op x (const w (d - c)))
  | Cmp ((Eq | Ne) as op, Binop (Sub, x, Const (w, c)), Const (_, d)) ->
      Some (cmp op x (const w (d + c)))
  (* zext b != 0  -->  b ; zext b == 0  -->  !b   (b of width 1). *)
  | Cmp (Ne, Zext b, Const (_, 0)) when width_of b = W1 -> Some b
  | Cmp (Eq, Zext b, Const (_, 0)) when width_of b = W1 -> Some (not_ b)
  | Cmp (Eq, Zext b, Const (_, 1)) when width_of b = W1 -> Some b
  | Cmp (Ne, Zext b, Const (_, 1)) when width_of b = W1 -> Some (not_ b)
  (* Comparisons of a zero-extended byte against out-of-range constants. *)
  | Cmp (Eq, Zext b, Const (_, c)) when width_of b = W8 ->
      if c > 0xFF then Some fls else Some (cmp Eq b (byte c))
  | Cmp (Ne, Zext b, Const (_, c)) when width_of b = W8 ->
      if c > 0xFF then Some tru else Some (cmp Ne b (byte c))
  | Cmp (Ltu, Zext b, Const (_, c)) when width_of b = W8 && c > 0xFF ->
      Some tru
  | Cmp (Leu, Zext b, Const (_, c)) when width_of b = W8 && c >= 0xFF ->
      Some tru
  | Cmp (Ltu, Const (_, c), Zext b) when width_of b = W8 && c >= 0xFF ->
      Some fls
  (* An unsigned value is never below zero and always >= 0. *)
  | Cmp (Ltu, _, Const (_, 0)) -> Some fls
  | Cmp (Leu, Const (_, 0), _) -> Some tru
  (* if c then 1 else 0 (width 1 arms) is just c. *)
  | Ite (c, Const (W1, 1), Const (W1, 0)) -> Some c
  | Ite (c, Const (W1, 0), Const (W1, 1)) -> Some (not_ c)
  (* zext (if c then a else b) --> if c then zext a else zext b when the
     arms are constants: lets comparisons above it fold. *)
  | Cmp (op, Ite (c, (Const _ as a), (Const _ as b)), (Const _ as d)) ->
      Some (ite c (cmp op a d) (cmp op b d))
  | Binop (And, Binop (And, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop And x (const w (c1 land c2)))
  | Binop (Or, Binop (Or, x, Const (w, c1)), Const (_, c2)) ->
      Some (binop Or x (const w (c1 lor c2)))
  | _ -> None

let rec fixpoint n e =
  if n = 0 then e
  else
    match step e with
    | None -> e
    | Some e' -> fixpoint (n - 1) e'

let rec simplify e =
  let e' =
    match e with
    | Const _ | Var _ -> e
    | Binop (op, a, b) -> binop op (simplify a) (simplify b)
    | Cmp (op, a, b) -> cmp op (simplify a) (simplify b)
    | Ite (c, a, b) -> ite (simplify c) (simplify a) (simplify b)
    | Extract (x, i) -> extract (simplify x) i
    | Concat4 (b3, b2, b1, b0) ->
        concat4 (simplify b3) (simplify b2) (simplify b1) (simplify b0)
    | Zext x -> zext (simplify x)
    | Not x -> not_ (simplify x)
  in
  fixpoint 8 e'

let simplify_bool e =
  let e' = simplify e in
  assert (width_of e' = W1);
  e'
