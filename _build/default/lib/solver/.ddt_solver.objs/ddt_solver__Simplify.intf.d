lib/solver/simplify.mli: Expr
