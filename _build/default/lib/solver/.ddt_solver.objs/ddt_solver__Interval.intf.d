lib/solver/interval.mli: Expr Hashtbl
