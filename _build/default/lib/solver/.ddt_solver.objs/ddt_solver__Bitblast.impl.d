lib/solver/bitblast.ml: Array Cnf Expr Hashtbl
