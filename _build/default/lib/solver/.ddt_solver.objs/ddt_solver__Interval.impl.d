lib/solver/interval.ml: Expr Hashtbl List
