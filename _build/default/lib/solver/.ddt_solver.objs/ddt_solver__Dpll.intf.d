lib/solver/dpll.mli: Cnf
