lib/solver/expr.mli: Format
