lib/solver/cnf.mli:
