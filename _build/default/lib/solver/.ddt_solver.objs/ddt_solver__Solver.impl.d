lib/solver/solver.ml: Atomic Bitblast Dpll Expr Hashtbl Interval List Simplify
