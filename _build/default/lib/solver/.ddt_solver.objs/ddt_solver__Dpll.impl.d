lib/solver/dpll.ml: Array Cnf List
