lib/solver/simplify.ml: Expr
