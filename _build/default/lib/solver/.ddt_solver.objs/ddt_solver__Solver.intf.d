lib/solver/solver.mli: Expr
