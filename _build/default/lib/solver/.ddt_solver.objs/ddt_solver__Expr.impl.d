lib/solver/expr.ml: Array Atomic Format Hashtbl List Stdlib
