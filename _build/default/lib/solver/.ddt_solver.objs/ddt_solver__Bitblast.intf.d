lib/solver/bitblast.mli: Cnf Expr
