lib/solver/cnf.ml: Array List
