type ctx = {
  c : Cnf.t;
  memo : (Expr.t, int array) Hashtbl.t;
  var_bits : (int, int array) Hashtbl.t; (* Expr var id -> literals *)
}

let create () =
  { c = Cnf.create (); memo = Hashtbl.create 64; var_bits = Hashtbl.create 16 }

let cnf ctx = ctx.c

let const_bits n v =
  Array.init n (fun i ->
      if (v lsr i) land 1 = 1 then Cnf.lit_true else Cnf.lit_false)

let var_bits ctx (v : Expr.var) =
  match Hashtbl.find_opt ctx.var_bits v.Expr.id with
  | Some bits -> bits
  | None ->
      let n = Expr.bits_of_width v.Expr.var_width in
      let bits = Array.init n (fun _ -> Cnf.fresh ctx.c) in
      Hashtbl.add ctx.var_bits v.Expr.id bits;
      bits

(* --- circuits ------------------------------------------------------- *)

let full_adder c a b cin =
  let s = Cnf.g_xor c (Cnf.g_xor c a b) cin in
  let cout = Cnf.g_maj c a b cin in
  (s, cout)

(* Returns (sum, carry_out). *)
let adder c xs ys =
  let n = Array.length xs in
  let out = Array.make n Cnf.lit_false in
  let carry = ref Cnf.lit_false in
  for i = 0 to n - 1 do
    let s, co = full_adder c xs.(i) ys.(i) !carry in
    out.(i) <- s;
    carry := co
  done;
  (out, !carry)

let negate_bits xs = Array.map (fun l -> -l) xs

let subtractor c xs ys =
  (* xs - ys = xs + ~ys + 1 *)
  let n = Array.length xs in
  let out = Array.make n Cnf.lit_false in
  let carry = ref Cnf.lit_true in
  for i = 0 to n - 1 do
    let s, co = full_adder c xs.(i) (-ys.(i)) !carry in
    out.(i) <- s;
    carry := co
  done;
  (out, !carry)

(* Full 2n-bit product of two n-bit vectors (shift-and-add). *)
let multiplier_full c xs ys =
  let n = Array.length xs in
  let acc = ref (Array.make (2 * n) Cnf.lit_false) in
  for i = 0 to n - 1 do
    let addend = Array.make (2 * n) Cnf.lit_false in
    for j = 0 to n - 1 do
      addend.(i + j) <- Cnf.g_and c xs.(j) ys.(i)
    done;
    let sum, _ = adder c !acc addend in
    acc := sum
  done;
  !acc

let multiplier c xs ys =
  let n = Array.length xs in
  Array.sub (multiplier_full c xs ys) 0 n

(* Unsigned less-than: scan LSB -> MSB; higher bits dominate. *)
let ult c xs ys =
  let n = Array.length xs in
  let res = ref Cnf.lit_false in
  for i = 0 to n - 1 do
    let eq = -Cnf.g_xor c xs.(i) ys.(i) in
    let lt_here = Cnf.g_and c (-xs.(i)) ys.(i) in
    res := Cnf.g_ite c eq !res lt_here
  done;
  !res

let eq_bits c xs ys =
  let n = Array.length xs in
  let acc = ref Cnf.lit_true in
  for i = 0 to n - 1 do
    acc := Cnf.g_and c !acc (-Cnf.g_xor c xs.(i) ys.(i))
  done;
  !acc

let mux_bits c sel xs ys =
  Array.init (Array.length xs) (fun i -> Cnf.g_ite c sel xs.(i) ys.(i))

(* Barrel shifter. [fill] supplies the bit shifted in; for ashr it is the
   sign bit. Shift amount is taken modulo the width (low log2 n bits). *)
let shifter c dir xs amount fill =
  let n = Array.length xs in
  let stages = match n with 8 -> 3 | 32 -> 5 | _ -> assert false in
  let cur = ref (Array.copy xs) in
  for s = 0 to stages - 1 do
    let k = 1 lsl s in
    let shifted =
      Array.init n (fun i ->
          match dir with
          | `Left -> if i - k >= 0 then !cur.(i - k) else Cnf.lit_false
          | `Right -> if i + k < n then !cur.(i + k) else fill)
    in
    cur := mux_bits c amount.(s) shifted !cur
  done;
  !cur

(* --- expression compilation ----------------------------------------- *)

let rec blast ctx e =
  match Hashtbl.find_opt ctx.memo e with
  | Some bits -> bits
  | None ->
      let bits = blast_uncached ctx e in
      Hashtbl.add ctx.memo e bits;
      bits

and blast_uncached ctx e =
  let open Expr in
  let c = ctx.c in
  match e with
  | Const (w, v) -> const_bits (bits_of_width w) v
  | Var v -> var_bits ctx v
  | Zext x ->
      let xs = blast ctx x in
      Array.init 32 (fun i ->
          if i < Array.length xs then xs.(i) else Cnf.lit_false)
  | Extract (x, i) -> Array.sub (blast ctx x) (8 * i) 8
  | Concat4 (b3, b2, b1, b0) ->
      Array.concat [ blast ctx b0; blast ctx b1; blast ctx b2; blast ctx b3 ]
  | Not x -> negate_bits (blast ctx x)
  | Ite (cond, a, b) ->
      let s = (blast ctx cond).(0) in
      mux_bits c s (blast ctx a) (blast ctx b)
  | Cmp (op, a, b) ->
      let xs = blast ctx a and ys = blast ctx b in
      let lit =
        match op with
        | Eq -> eq_bits c xs ys
        | Ne -> -eq_bits c xs ys
        | Ltu -> ult c xs ys
        | Leu -> -ult c ys xs
        | Lts -> ult c (flip_sign xs) (flip_sign ys)
        | Les -> -ult c (flip_sign ys) (flip_sign xs)
      in
      [| lit |]
  | Binop (op, a, b) -> (
      let xs = blast ctx a and ys = blast ctx b in
      match op with
      | Add -> fst (adder c xs ys)
      | Sub -> fst (subtractor c xs ys)
      | Mul -> multiplier c xs ys
      | And -> Array.init (Array.length xs) (fun i -> Cnf.g_and c xs.(i) ys.(i))
      | Or -> Array.init (Array.length xs) (fun i -> Cnf.g_or c xs.(i) ys.(i))
      | Xor -> Array.init (Array.length xs) (fun i -> Cnf.g_xor c xs.(i) ys.(i))
      | Shl -> shifter c `Left xs ys Cnf.lit_false
      | Lshr -> shifter c `Right xs ys Cnf.lit_false
      | Ashr -> shifter c `Right xs ys xs.(Array.length xs - 1)
      | Divu -> fst (divmod ctx xs ys)
      | Remu -> snd (divmod ctx xs ys))

and flip_sign xs =
  let xs = Array.copy xs in
  let msb = Array.length xs - 1 in
  xs.(msb) <- -xs.(msb);
  xs

(* q = a /u b, r = a %u b. Encoded as: if b = 0 then q = ~0, r = a
   else a = q*b + r (exactly, over the double-width product) and r <u b. *)
and divmod ctx xs ys =
  let c = ctx.c in
  let n = Array.length xs in
  let q = Array.init n (fun _ -> Cnf.fresh c) in
  let r = Array.init n (fun _ -> Cnf.fresh c) in
  let b_zero = eq_bits c ys (const_bits n 0) in
  (* b = 0 branch. *)
  Array.iter (fun l -> Cnf.assert_implies c b_zero l) q;
  Array.iteri (fun i l -> Cnf.assert_implies c b_zero (Cnf.g_ite c xs.(i) l (-l))) r;
  (* b <> 0 branch: product q*b must have no high bits, q*b + r = a with no
     carry out, and r <u b. *)
  let prod = multiplier_full c q ys in
  let imp lit = Cnf.assert_implies c (-b_zero) lit in
  for i = n to (2 * n) - 1 do
    imp (-prod.(i))
  done;
  let low = Array.sub prod 0 n in
  let sum, carry = adder c low r in
  imp (-carry);
  Array.iteri (fun i l -> imp (Cnf.g_ite c xs.(i) l (-l))) sum;
  imp (ult c r ys);
  (q, r)

let assert_true ctx e =
  assert (Expr.width_of e = Expr.W1);
  let bits = blast ctx e in
  Cnf.assert_lit ctx.c bits.(0)

let model_of ctx (assign : bool array) (v : Expr.var) =
  match Hashtbl.find_opt ctx.var_bits v.Expr.id with
  | None -> 0
  | Some bits ->
      let value = ref 0 in
      Array.iteri
        (fun i l ->
          let b =
            if l = Cnf.lit_true then true
            else if l = Cnf.lit_false then false
            else if l > 0 then assign.(l)
            else not assign.(-l)
          in
          if b then value := !value lor (1 lsl i))
        bits;
      !value
