(** The constraint solver used by the symbolic execution engine.

    Decides satisfiability of a conjunction of width-1 expressions (path
    constraints) through a layered pipeline:

    + algebraic simplification — trivially true constraints are dropped,
      a trivially false one answers Unsat immediately;
    + interval inference — sound contradiction detection and cheap
      candidate models verified by concrete evaluation;
    + bit-blasting to CNF and DPLL search.

    Every Sat answer carries a model that has been {e verified} by
    evaluating all constraints under it. *)

type model = Expr.var -> int

type result =
  | Sat of model
  | Unsat
  | Unknown

val check : Expr.t list -> result

val is_feasible : Expr.t list -> bool
(** Unknown is treated as feasible (the engine must never drop a path that
    might be real; over-approximation can only cost false positives, which
    the replay step weeds out). *)

val concretize : Expr.t list -> Expr.t -> int option
(** [concretize constraints e] returns a feasible concrete value of [e]
    under the constraints, or [None] if they are unsatisfiable. *)

val stats_queries : unit -> int
(** Number of [check] calls since start; used by the benchmark harness. *)

val reset_stats : unit -> unit
