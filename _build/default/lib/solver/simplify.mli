(** Algebraic simplification of symbolic expressions.

    Rebuilds an expression bottom-up through the smart constructors of
    {!Expr} and applies a set of rewrite rules that the smart constructors
    do not: constant re-association, comparison shifting, boolean
    round-trip elimination ([zext b != 0] back to [b]), and range-based
    folding of comparisons against zero-extended narrow values.

    Simplification is semantics-preserving: for every environment [env],
    [Expr.eval env (simplify e) = Expr.eval env e]. The property test suite
    checks exactly this. *)

val simplify : Expr.t -> Expr.t

val simplify_bool : Expr.t -> Expr.t
(** [simplify_bool e] simplifies a width-1 expression used as a path
    condition. Same as {!simplify} but asserts the result width. *)
