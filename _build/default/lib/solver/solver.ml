type model = Expr.var -> int

type result =
  | Sat of model
  | Unsat
  | Unknown

let queries = Atomic.make 0
let stats_queries () = Atomic.get queries
let reset_stats () = Atomic.set queries 0

let verified constraints env =
  List.for_all (fun c -> Expr.eval env c = 1) constraints

let check constraints =
  Atomic.incr queries;
  let constraints = List.map Simplify.simplify_bool constraints in
  if List.exists (fun c -> c = Expr.fls) constraints then Unsat
  else
    let constraints = List.filter (fun c -> c <> Expr.tru) constraints in
    if constraints = [] then Sat (fun _ -> 0)
    else
      let vars =
        List.concat_map Expr.vars constraints
        |> List.sort_uniq (fun a b -> compare a.Expr.id b.Expr.id)
      in
      match Interval.infer constraints with
      | None -> Unsat
      | Some env_ranges -> (
          (* Cheap verified guesses first. *)
          let guess =
            List.find_opt
              (fun m -> verified constraints m)
              (Interval.candidates env_ranges vars)
          in
          match guess with
          | Some m -> Sat m
          | None -> (
              let ctx = Bitblast.create () in
              List.iter (Bitblast.assert_true ctx) constraints;
              match Dpll.solve (Bitblast.cnf ctx) with
              | Some Dpll.Unsat -> Unsat
              | None -> Unknown
              | Some (Dpll.Sat assign) ->
                  let tbl = Hashtbl.create 16 in
                  List.iter
                    (fun v ->
                      Hashtbl.replace tbl v.Expr.id
                        (Bitblast.model_of ctx assign v))
                    vars;
                  let m (v : Expr.var) =
                    match Hashtbl.find_opt tbl v.Expr.id with
                    | Some x -> x
                    | None -> 0
                  in
                  (* The model must satisfy the constraints; a failure here
                     is a bit-blasting bug, so fail loudly. *)
                  assert (verified constraints m);
                  Sat m))

let is_feasible constraints =
  match check constraints with Sat _ | Unknown -> true | Unsat -> false

let concretize constraints e =
  match check constraints with
  | Unsat -> None
  | Sat m -> Some (Expr.eval m e)
  | Unknown ->
      (* Fall back to an unverified guess: evaluate under zeros. *)
      Some (Expr.eval (fun _ -> 0) e)
