(** Bit-blasting of symbolic expressions into CNF.

    Each expression is compiled to an array of CNF literals (LSB first).
    Word operations become the usual circuits: ripple-carry adders,
    shift-add multipliers, barrel shifters, bit comparators. Unsigned
    division/remainder are encoded by their defining identity
    [a = q*b + r /\ r <u b] over a double-width product, with the SMT-LIB
    convention for division by zero ([q = all-ones], [r = a]). *)

type ctx

val create : unit -> ctx
val cnf : ctx -> Cnf.t

val blast : ctx -> Expr.t -> int array
(** Literal vector of the expression, memoized per structurally-equal
    subterm within one context. *)

val assert_true : ctx -> Expr.t -> unit
(** Assert a width-1 expression as a constraint. *)

val model_of : ctx -> bool array -> Expr.var -> int
(** Read a variable's value out of a SAT assignment. Variables never
    mentioned in any blasted expression default to 0. *)
