(** The mini-portcls kernel API — the audio-driver half of the interface.

    Audio miniports register through [PcRegisterMiniport] with a
    six-word characteristics block: Initialize, Play, Stop, ISR,
    HandleInterrupt (DPC), Halt. Interrupt service is attached with
    [PcNewInterruptSync] (which can fail — the Ensoniq AudioPCI bug of
    Table 2 crashes on exactly that failure path when the corresponding
    annotation forks it). Spinlocks use the [Ke*] flavor, which shares
    semantics with the NDIS ones. *)

val entry_point_names : string list
(** ["initialize"; "play"; "stop"; "isr"; "dpc"; "halt"] *)

val install : unit -> unit
(** Register all portcls API implementations with {!Kapi}. Idempotent. *)
