type impl = Kstate.t -> Mach.t -> unit

let table : (string, impl) Hashtbl.t = Hashtbl.create 64

let register name impl = Hashtbl.replace table name impl
let find name = Hashtbl.find_opt table name

let registered_names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) table [] |> List.sort compare

let call ?(pre = fun _ _ _ -> ()) ?(post = fun _ _ _ -> ()) ks mach name =
  match find name with
  | None -> failwith (Printf.sprintf "driver imports unknown kernel API %S" name)
  | Some impl ->
      Kstate.bump_kcall ks;
      Kstate.emit ks (Kstate.Ev_kcall_enter (name, mach.Mach.cur_pc ()));
      pre name ks mach;
      impl ks mach;
      post name ks mach;
      Kstate.emit ks (Kstate.Ev_kcall_leave name)
