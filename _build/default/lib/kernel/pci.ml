type descriptor = {
  vendor_id : int;
  device_id : int;
  revision : int;
  bar_sizes : int list;
  irq_line : int;
}

let put16 b off v =
  Bytes.set_uint8 b off (v land 0xFF);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xFF)

let put32 b off v =
  put16 b off (v land 0xFFFF);
  put16 b (off + 2) ((v lsr 16) land 0xFFFF)

let config_space d =
  let b = Bytes.make 64 '\000' in
  put16 b 0x00 d.vendor_id;
  put16 b 0x02 d.device_id;
  Bytes.set_uint8 b 0x08 d.revision;
  Bytes.set_uint8 b 0x3C d.irq_line;
  b

type assigned = {
  desc : descriptor;
  bars : int list;
  irq : int;
}

let page_align v = (v + 0xFFF) land lnot 0xFFF

let assign_resources d ~mmio_base =
  let bars, _ =
    List.fold_left
      (fun (acc, next) size ->
        (next :: acc, next + page_align (max size 0x1000)))
      ([], mmio_base) d.bar_sizes
  in
  { desc = d; bars = List.rev bars; irq = d.irq_line }

let read_config a off =
  let b = config_space a.desc in
  List.iteri (fun i bar -> put32 b (0x10 + (4 * i)) bar) a.bars;
  if off >= 0 && off < Bytes.length b then Bytes.get_uint8 b off else 0
