type descriptor = {
  u_vendor : int;
  u_product : int;
  u_class : int;
  u_max_packet : int;
  u_num_endpoints : int;
}

let default_descriptor =
  { u_vendor = 0x0BDA; u_product = 0x8150; u_class = 0xFF; u_max_packet = 64;
    u_num_endpoints = 3 }

let current = ref default_descriptor
let set_descriptor d = current := d

let descriptor_bytes d =
  [| 18;                        (* bLength *)
     1;                         (* bDescriptorType: DEVICE *)
     0x00; 0x02;                (* bcdUSB 2.0 *)
     d.u_class;                 (* bDeviceClass *)
     0;                         (* bDeviceSubClass *)
     0;                         (* bDeviceProtocol *)
     d.u_max_packet;            (* bMaxPacketSize0 *)
     d.u_vendor land 0xFF; (d.u_vendor lsr 8) land 0xFF;
     d.u_product land 0xFF; (d.u_product lsr 8) land 0xFF;
     0x00; 0x01;                (* bcdDevice *)
     1; 2; 0;                   (* string indexes *)
     d.u_num_endpoints |]

let status_success = 0
let status_stall = 1

let usb_get_device_descriptor _ks (m : Mach.t) =
  let buf = m.Mach.arg 0 in
  let len = m.Mach.arg 1 in
  let bytes = descriptor_bytes !current in
  let n = min len (Array.length bytes) in
  for i = 0 to n - 1 do
    m.Mach.write_u8 (buf + i) bytes.(i)
  done;
  m.Mach.set_ret n

let urb_endpoint = 0
let urb_direction = 4
let urb_buffer = 8
let urb_length = 12
let urb_status = 16
let urb_actual = 20

let usb_submit_urb ks (m : Mach.t) =
  let urb = m.Mach.arg 0 in
  let endpoint = m.Mach.read_u32 (urb + urb_endpoint) in
  let direction = m.Mach.read_u32 (urb + urb_direction) in
  let buffer = m.Mach.read_u32 (urb + urb_buffer) in
  let length = m.Mach.read_u32 (urb + urb_length) in
  if length > 4096 then
    Bugcheck.crash Bugcheck.Verifier_detected
      "UsbSubmitUrb: transfer length %d exceeds the pipe maximum" length;
  (match Kstate.region_containing ks buffer with
   | None when length > 0 ->
       Bugcheck.crash Bugcheck.Verifier_detected
         "UsbSubmitUrb: transfer buffer 0x%x is not owned by the driver"
         buffer
   | _ -> ());
  if direction = 1 then begin
    (* IN transfer: fully symbolic hardware — every byte of the payload
       and the actual-length are unconstrained device outputs. *)
    for i = 0 to length - 1 do
      m.Mach.write_expr_u8 (buffer + i)
        (m.Mach.fresh_symbolic
           (Printf.sprintf "usb_ep%d[%d]" endpoint i)
           Ddt_solver.Expr.W8)
    done;
    let actual =
      m.Mach.fresh_symbolic
        (Printf.sprintf "usb_ep%d_len" endpoint)
        Ddt_solver.Expr.W32
    in
    (* The bus guarantees no more than the requested length was
       transferred — but nothing more (short packets are normal). *)
    m.Mach.assume
      (Ddt_solver.Expr.cmp Ddt_solver.Expr.Leu actual
         (Ddt_solver.Expr.word length));
    m.Mach.write_expr_u32 (urb + urb_actual) actual
  end
  else
    (* OUT transfer: the symbolic device discards writes. *)
    m.Mach.write_u32 (urb + urb_actual) length;
  m.Mach.write_u32 (urb + urb_status) status_success;
  m.Mach.set_ret status_success

let usb_register_interrupt_endpoint ks (m : Mach.t) =
  let _endpoint = m.Mach.arg 0 in
  let handler = m.Mach.arg 1 in
  let ctx = m.Mach.arg 2 in
  if handler = 0 then
    Bugcheck.crash Bugcheck.Null_handler
      "UsbRegisterInterruptEndpoint: null completion handler";
  Kstate.set_entry_point ks "isr" handler;
  Kstate.set_entry_point ks "isr_ctx" ctx;
  Kstate.set_isr_registered ks true;
  m.Mach.set_ret status_success

let usb_unregister_interrupt_endpoint ks (m : Mach.t) =
  Kstate.set_isr_registered ks false;
  m.Mach.set_ret status_success

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    List.iter
      (fun (name, impl) -> Kapi.register name impl)
      [ ("UsbGetDeviceDescriptor", usb_get_device_descriptor);
        ("UsbSubmitUrb", usb_submit_urb);
        ("UsbRegisterInterruptEndpoint", usb_register_interrupt_endpoint);
        ("UsbUnregisterInterruptEndpoint", usb_unregister_interrupt_endpoint) ]
  end

let _ = status_stall
