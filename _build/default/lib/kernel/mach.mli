(** The machine interface kernel code runs against.

    The kernel executes natively (concretely) while the driver may be
    running symbolically — DDT's selective symbolic execution (§3.2).
    Kernel API implementations therefore access driver-visible memory and
    kcall arguments only through this record. The symbolic engine's
    implementation concretizes symbolic values on demand and records
    concretization constraints; the concrete engine's implementation is
    plain memory access.

    [fork] is the annotation/fork primitive: the current path is replaced
    by one successor per alternative. In the symbolic engine every
    alternative becomes an independent state; in a concrete engine one
    alternative is chosen. Code after a [fork] call never runs on the
    original path, so kernel functions must perform shared side effects
    before forking and per-successor effects inside the alternative
    callbacks. *)

type t = {
  arg : int -> int;
  (** kcall argument [i], concretized if symbolic *)
  arg_expr : int -> Ddt_solver.Expr.t;
  set_ret : int -> unit;
  get_ret : unit -> int;
  (** concretized current value of the return register *)
  set_ret_expr : Ddt_solver.Expr.t -> unit;
  read_u32 : int -> int;
  write_u32 : int -> int -> unit;
  read_u8 : int -> int;
  write_u8 : int -> int -> unit;
  read_expr_u32 : int -> Ddt_solver.Expr.t;
  write_expr_u32 : int -> Ddt_solver.Expr.t -> unit;
  read_expr_u8 : int -> Ddt_solver.Expr.t;
  write_expr_u8 : int -> Ddt_solver.Expr.t -> unit;
  fresh_symbolic : string -> Ddt_solver.Expr.width -> Ddt_solver.Expr.t;
  (** a new unconstrained symbolic value (concrete engines return a
      random concrete stand-in) *)
  assume : Ddt_solver.Expr.t -> unit;
  (** add a path constraint; discards the path if infeasible *)
  fork : (string * (t -> unit)) list -> unit;
  (** replace this path by one successor per alternative; never returns
      normally on the symbolic engine *)
  discard : string -> unit;
  (** kill the current path (DDT's [ddt_discard_state]) *)
  cur_pc : unit -> int;
  kstate : unit -> Kstate.t;
  (** the kernel state of the path this machine is bound to — fork
      alternative callbacks receive a machine bound to the forked path,
      so annotations can adjust that path's kernel bookkeeping *)
}

val read_cstring : t -> int -> string
(** NUL-terminated string through [read_u8] (capped at 256 bytes). *)

exception Path_terminated of string
(** Raised by [discard]/[fork] implementations to unwind out of a kernel
    call whose path is being abandoned or split. *)
