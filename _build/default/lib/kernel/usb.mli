(** Mini-USB bus support — lifting the paper's §6.1 limitation ("DDT does
    not yet support USB ... this can be overcome by extending QEMU").

    USB devices have no MMIO: all device I/O goes through URBs (USB
    request blocks) submitted to the bus driver. That makes USB a pure
    kernel-API surface, which suits DDT even better than PCI: symbolic
    hardware is implemented by the bus itself — every IN transfer fills
    the driver's buffer with fresh symbolic bytes, and OUT transfers are
    discarded. The "shell" of §4.2 is the 18-byte device descriptor the
    enumeration returns.

    URB layout (word offsets): +0 endpoint, +4 direction (0 OUT / 1 IN),
    +8 buffer, +12 requested length, +16 status (out), +20 actual length
    (out). APIs:
    - [UsbGetDeviceDescriptor (buf, len)] — copy the enumeration
      descriptor;
    - [UsbSubmitUrb (urb)] — perform a transfer synchronously;
    - [UsbRegisterInterruptEndpoint (endpoint, handler, ctx)] — attach a
      completion handler, enabling symbolic interrupt injection exactly
      like a PCI ISR. *)

type descriptor = {
  u_vendor : int;
  u_product : int;
  u_class : int;
  u_max_packet : int;
  u_num_endpoints : int;
}

val default_descriptor : descriptor

val set_descriptor : descriptor -> unit
(** The descriptor the next enumeration returns (process-wide, like the
    bus). *)

val descriptor_bytes : descriptor -> int array
(** The 18-byte standard device descriptor. *)

val install : unit -> unit
(** Register the USB APIs with {!Kapi}. Idempotent. *)
