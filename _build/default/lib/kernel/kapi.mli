(** The kernel API dispatch table.

    Driver [Kcall]s land here by import name. Implementations are
    registered once per process (they are stateless; all mutable state
    lives in {!Kstate}). The [call] wrapper emits the kcall events and
    runs the annotation hooks the caller supplies — DDT's interface
    annotations (§3.4) attach at exactly these two points. *)

type impl = Kstate.t -> Mach.t -> unit

val register : string -> impl -> unit
val find : string -> impl option
val registered_names : unit -> string list

val call :
  ?pre:(string -> Kstate.t -> Mach.t -> unit) ->
  ?post:(string -> Kstate.t -> Mach.t -> unit) ->
  Kstate.t -> Mach.t -> string -> unit
(** Dispatch one kernel call. @raise Failure on an unknown import.
    @raise Bugcheck.Bugcheck when the call crashes the kernel. *)
