let status_success = 0
let status_failure = 1
let status_resources = 2
let status_pending = 3
let status_not_supported = 4

let entry_point_names =
  [ "initialize"; "query"; "set"; "send"; "isr"; "dpc"; "halt"; "reset" ]

let handle_of_alloc (a : Kstate.alloc) =
  Ddt_dvm.Layout.kernel_base + (a.Kstate.a_id * 16)

(* Passive-level-only APIs crash at elevated IRQL, like the real kernel. *)
let require_passive ks name =
  if Kstate.irql ks >= Kstate.dispatch_level then
    Bugcheck.crash Bugcheck.Irql_not_less_or_equal
      "%s called at IRQL %d (requires PASSIVE_LEVEL)" name (Kstate.irql ks)

let bad_handle name h =
  Bugcheck.crash Bugcheck.Bad_handle "%s: invalid handle 0x%x" name h

(* --- registration ----------------------------------------------------- *)

let ndis_m_register_miniport ks (m : Mach.t) =
  let chars = m.Mach.arg 0 in
  List.iteri
    (fun i name ->
      let addr = m.Mach.read_u32 (chars + (4 * i)) in
      if addr <> 0 then Kstate.set_entry_point ks name addr)
    entry_point_names;
  (match Kstate.entry_point ks "initialize" with
   | None ->
       Bugcheck.crash Bugcheck.Null_handler
         "NdisMRegisterMiniport: no Initialize handler"
   | Some _ -> ());
  m.Mach.set_ret status_success

let ndis_m_set_attributes ks (m : Mach.t) =
  Kstate.set_driver_ctx ks (m.Mach.arg 0);
  m.Mach.set_ret status_success

let ndis_m_register_interrupt ks (m : Mach.t) =
  let _vector = m.Mach.arg 0 in
  (match Kstate.entry_point ks "isr" with
   | None ->
       Bugcheck.crash Bugcheck.Null_handler
         "NdisMRegisterInterrupt without an ISR handler"
   | Some _ -> ());
  Kstate.set_isr_registered ks true;
  m.Mach.set_ret status_success

let ndis_m_deregister_interrupt ks (m : Mach.t) =
  Kstate.set_isr_registered ks false;
  m.Mach.set_ret status_success

(* --- configuration (registry) ------------------------------------------ *)

let ndis_open_configuration ks (m : Mach.t) =
  require_passive ks "NdisOpenConfiguration";
  let out = m.Mach.arg 0 in
  let a = Kstate.handle_alloc ks ~kind:Kstate.Config_handle ~tag:0 in
  m.Mach.write_u32 out (handle_of_alloc a);
  m.Mach.set_ret status_success

let ndis_read_configuration ks (m : Mach.t) =
  require_passive ks "NdisReadConfiguration";
  let handle = m.Mach.arg 0 in
  let name_ptr = m.Mach.arg 1 in
  let default = m.Mach.arg 2 in
  (match Kstate.alloc_of_handle ks handle with
   | Some { Kstate.a_kind = Kstate.Config_handle; a_freed = false; _ } -> ()
   | _ -> bad_handle "NdisReadConfiguration" handle);
  let name = Mach.read_cstring m name_ptr in
  let value =
    match Kstate.registry_find ks name with
    | Some v -> v
    | None -> default
  in
  m.Mach.set_ret value

let ndis_close_configuration ks (m : Mach.t) =
  require_passive ks "NdisCloseConfiguration";
  let handle = m.Mach.arg 0 in
  (match Kstate.alloc_of_handle ks handle with
   | Some ({ Kstate.a_kind = Kstate.Config_handle; a_freed = false; _ } as a) ->
       Kstate.free_alloc ks a
   | _ -> bad_handle "NdisCloseConfiguration" handle);
  m.Mach.set_ret status_success

(* --- memory ------------------------------------------------------------ *)

let ndis_allocate_memory_with_tag ks (m : Mach.t) =
  let out = m.Mach.arg 0 in
  let size = m.Mach.arg 1 in
  let tag = m.Mach.arg 2 in
  let a = Kstate.heap_alloc ks ~size ~kind:Kstate.Pool ~tag in
  m.Mach.write_u32 out a.Kstate.a_addr;
  m.Mach.set_ret status_success

let free_by_addr ks name addr =
  match Kstate.alloc_of_addr ks addr with
  | Some a when not a.Kstate.a_freed -> Kstate.free_alloc ks a
  | Some _ ->
      Bugcheck.crash Bugcheck.Verifier_detected "%s: double free of 0x%x" name
        addr
  | None ->
      Bugcheck.crash Bugcheck.Verifier_detected
        "%s: free of unallocated address 0x%x" name addr

let ndis_free_memory ks (m : Mach.t) =
  let addr = m.Mach.arg 0 in
  free_by_addr ks "NdisFreeMemory" addr;
  m.Mach.set_ret status_success

let ex_allocate_pool_with_tag ks (m : Mach.t) =
  let pool_type = m.Mach.arg 0 in
  let size = m.Mach.arg 1 in
  let tag = m.Mach.arg 2 in
  (* Pool type 1 = paged: forbidden at DISPATCH_LEVEL. *)
  if pool_type = 1 then require_passive ks "ExAllocatePoolWithTag(paged)";
  let a = Kstate.heap_alloc ks ~size ~kind:Kstate.Pool ~tag in
  m.Mach.set_ret a.Kstate.a_addr

let ex_free_pool_with_tag ks (m : Mach.t) =
  let addr = m.Mach.arg 0 in
  free_by_addr ks "ExFreePoolWithTag" addr;
  m.Mach.set_ret status_success

(* --- packets and buffers ------------------------------------------------ *)

let alloc_handle_api ks (m : Mach.t) kind =
  let out = m.Mach.arg 0 in
  let a = Kstate.handle_alloc ks ~kind ~tag:0 in
  m.Mach.write_u32 out (handle_of_alloc a);
  m.Mach.set_ret status_success

let free_handle_api ks (m : Mach.t) name kind =
  let h = m.Mach.arg 0 in
  (match Kstate.alloc_of_handle ks h with
   | Some a when a.Kstate.a_kind = kind && not a.Kstate.a_freed ->
       Kstate.free_alloc ks a
   | _ -> bad_handle name h);
  m.Mach.set_ret status_success

let ndis_allocate_packet_pool ks m = alloc_handle_api ks m Kstate.Packet_pool

let ndis_free_packet_pool ks m =
  free_handle_api ks m "NdisFreePacketPool" Kstate.Packet_pool

let ndis_allocate_buffer_pool ks m = alloc_handle_api ks m Kstate.Buffer_pool

let ndis_free_buffer_pool ks m =
  free_handle_api ks m "NdisFreeBufferPool" Kstate.Buffer_pool

let packet_descriptor_size = 48

let ndis_allocate_packet ks (m : Mach.t) =
  let out = m.Mach.arg 0 in
  let pool = m.Mach.arg 1 in
  (match Kstate.alloc_of_handle ks pool with
   | Some { Kstate.a_kind = Kstate.Packet_pool; a_freed = false; _ } -> ()
   | _ -> bad_handle "NdisAllocatePacket" pool);
  let a =
    Kstate.heap_alloc ks ~size:packet_descriptor_size ~kind:Kstate.Packet
      ~tag:0
  in
  m.Mach.write_u32 out a.Kstate.a_addr;
  m.Mach.set_ret status_success

let ndis_free_packet ks (m : Mach.t) =
  free_by_addr ks "NdisFreePacket" (m.Mach.arg 0);
  m.Mach.set_ret status_success

let buffer_descriptor_size = 16

let ndis_allocate_buffer ks (m : Mach.t) =
  let out = m.Mach.arg 0 in
  let pool = m.Mach.arg 1 in
  let va = m.Mach.arg 2 in
  let len = m.Mach.arg 3 in
  (match Kstate.alloc_of_handle ks pool with
   | Some { Kstate.a_kind = Kstate.Buffer_pool; a_freed = false; _ } -> ()
   | _ -> bad_handle "NdisAllocateBuffer" pool);
  let a =
    Kstate.heap_alloc ks ~size:buffer_descriptor_size ~kind:Kstate.Buffer
      ~tag:0
  in
  m.Mach.write_u32 a.Kstate.a_addr va;
  m.Mach.write_u32 (a.Kstate.a_addr + 4) len;
  m.Mach.write_u32 out a.Kstate.a_addr;
  m.Mach.set_ret status_success

let ndis_free_buffer ks (m : Mach.t) =
  free_by_addr ks "NdisFreeBuffer" (m.Mach.arg 0);
  m.Mach.set_ret status_success

let ndis_m_indicate_receive_packet ks (m : Mach.t) =
  let _pkt = m.Mach.arg 0 in
  ignore ks;
  m.Mach.set_ret status_success

(* --- spinlocks ---------------------------------------------------------- *)

let ndis_allocate_spin_lock ks (m : Mach.t) =
  Kstate.init_lock ks (m.Mach.arg 0);
  m.Mach.set_ret status_success

let ndis_free_spin_lock ks (m : Mach.t) =
  Kstate.destroy_lock ks (m.Mach.arg 0);
  m.Mach.set_ret status_success

let ndis_acquire_spin_lock ks (m : Mach.t) =
  Kstate.acquire_lock ks (m.Mach.arg 0) ~dpr:false;
  m.Mach.set_ret status_success

let ndis_release_spin_lock ks (m : Mach.t) =
  Kstate.release_lock ks (m.Mach.arg 0) ~dpr:false;
  m.Mach.set_ret status_success

let ndis_dpr_acquire_spin_lock ks (m : Mach.t) =
  Kstate.acquire_lock ks (m.Mach.arg 0) ~dpr:true;
  m.Mach.set_ret status_success

let ndis_dpr_release_spin_lock ks (m : Mach.t) =
  Kstate.release_lock ks (m.Mach.arg 0) ~dpr:true;
  m.Mach.set_ret status_success

(* --- timers ------------------------------------------------------------- *)

let ndis_m_initialize_timer ks (m : Mach.t) =
  let addr = m.Mach.arg 0 in
  let func = m.Mach.arg 1 in
  let ctx = m.Mach.arg 2 in
  Kstate.init_timer ks ~addr ~func ~ctx;
  m.Mach.set_ret status_success

let ndis_m_set_timer ks (m : Mach.t) =
  Kstate.set_timer ks ~addr:(m.Mach.arg 0) ~periodic:false;
  m.Mach.set_ret status_success

let ndis_m_set_periodic_timer ks (m : Mach.t) =
  Kstate.set_timer ks ~addr:(m.Mach.arg 0) ~periodic:true;
  m.Mach.set_ret status_success

let ndis_m_cancel_timer ks (m : Mach.t) =
  Kstate.cancel_timer ks ~addr:(m.Mach.arg 0);
  m.Mach.set_ret status_success

(* --- hardware ----------------------------------------------------------- *)

let ndis_m_map_io_space ks (m : Mach.t) =
  require_passive ks "NdisMMapIoSpace";
  let out = m.Mach.arg 0 in
  let bar_index = m.Mach.arg 1 in
  let dev = Kstate.device ks in
  (match List.nth_opt dev.Pci.bars bar_index with
   | None -> m.Mach.set_ret status_failure
   | Some bar ->
       let size =
         match List.nth_opt dev.Pci.desc.Pci.bar_sizes bar_index with
         | Some s -> max s 0x1000
         | None -> 0x1000
       in
       Kstate.grant ks
         { Kstate.r_start = bar; r_size = size; r_writable = true;
           r_note = "mapped I/O space" };
       m.Mach.write_u32 out bar;
       m.Mach.set_ret status_success)

let ndis_read_pci_slot_information ks (m : Mach.t) =
  let offset = m.Mach.arg 0 in
  let buf = m.Mach.arg 1 in
  let len = m.Mach.arg 2 in
  let dev = Kstate.device ks in
  for i = 0 to len - 1 do
    m.Mach.write_u8 (buf + i) (Pci.read_config dev (offset + i))
  done;
  m.Mach.set_ret len

(* --- memory utilities ----------------------------------------------------- *)

(* The kernel validates that the driver owns every byte it asks the kernel
   to touch (§3.1.1: DDT hooks the kernel API functions and analyzes their
   arguments) — out-of-range requests are exactly how drivers corrupt the
   kernel with its own help, so the checked build bugchecks. *)
let validate_driver_range ks name addr len =
  if len > 0 then begin
    let ok a =
      (* Granted regions plus the device BARs. *)
      (match Kstate.region_containing ks a with Some _ -> true | None -> false)
      ||
      let dev = Kstate.device ks in
      List.exists
        (fun bar -> a >= bar && a < bar + 0x4000)
        dev.Pci.bars
    in
    (* Endpoints suffice: regions are contiguous and the red zones make
       straddling impossible without one endpoint escaping. *)
    if not (ok addr && ok (addr + len - 1)) then
      Bugcheck.crash Bugcheck.Verifier_detected
        "%s: range [0x%x, 0x%x) is not owned by the driver" name addr
        (addr + len)
  end

let ndis_move_memory ks (m : Mach.t) =
  let dst = m.Mach.arg 0 in
  let src = m.Mach.arg 1 in
  let len = m.Mach.arg 2 in
  validate_driver_range ks "NdisMoveMemory" dst len;
  validate_driver_range ks "NdisMoveMemory" src len;
  (* Copy expression-by-expression: symbolic bytes stay symbolic across
     the kernel boundary (the kernel treats driver buffers as opaque).
     Direction matters for overlapping ranges, like memmove. *)
  if dst <= src then
    for i = 0 to len - 1 do
      m.Mach.write_expr_u8 (dst + i) (m.Mach.read_expr_u8 (src + i))
    done
  else
    for i = len - 1 downto 0 do
      m.Mach.write_expr_u8 (dst + i) (m.Mach.read_expr_u8 (src + i))
    done;
  m.Mach.set_ret status_success

let ndis_zero_memory ks (m : Mach.t) =
  let dst = m.Mach.arg 0 in
  let len = m.Mach.arg 1 in
  validate_driver_range ks "NdisZeroMemory" dst len;
  for i = 0 to len - 1 do
    m.Mach.write_u8 (dst + i) 0
  done;
  m.Mach.set_ret status_success

let ndis_equal_memory ks (m : Mach.t) =
  let a = m.Mach.arg 0 in
  let b = m.Mach.arg 1 in
  let len = m.Mach.arg 2 in
  validate_driver_range ks "NdisEqualMemory" a len;
  validate_driver_range ks "NdisEqualMemory" b len;
  let rec go i = i >= len || (m.Mach.read_u8 (a + i) = m.Mach.read_u8 (b + i) && go (i + 1)) in
  m.Mach.set_ret (if go 0 then 1 else 0)

(* DMA common buffers: a virtual/physical pair; in this machine the
   "physical" address the device sees equals the virtual one. *)
let ndis_m_allocate_shared_memory ks (m : Mach.t) =
  let va_out = m.Mach.arg 0 in
  let pa_out = m.Mach.arg 1 in
  let size = m.Mach.arg 2 in
  let a = Kstate.heap_alloc ks ~size ~kind:Kstate.Pool ~tag:0x444D41 in
  m.Mach.write_u32 va_out a.Kstate.a_addr;
  m.Mach.write_u32 pa_out a.Kstate.a_addr;
  m.Mach.set_ret status_success

let ndis_m_free_shared_memory ks (m : Mach.t) =
  free_by_addr ks "NdisMFreeSharedMemory" (m.Mach.arg 0);
  m.Mach.set_ret status_success

(* --- misc ---------------------------------------------------------------- *)

let ndis_stall_execution _ks (m : Mach.t) =
  let _us = m.Mach.arg 0 in
  m.Mach.set_ret status_success

let ndis_write_error_log_entry _ks (m : Mach.t) = m.Mach.set_ret status_success

let ke_get_current_irql ks (m : Mach.t) = m.Mach.set_ret (Kstate.irql ks)

let ke_bugcheck_ex _ks (m : Mach.t) =
  Bugcheck.crash Bugcheck.Verifier_detected "KeBugCheckEx(0x%x) from driver"
    (m.Mach.arg 0)

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    List.iter
      (fun (name, impl) -> Kapi.register name impl)
      [ ("NdisMRegisterMiniport", ndis_m_register_miniport);
        ("NdisMSetAttributes", ndis_m_set_attributes);
        ("NdisMRegisterInterrupt", ndis_m_register_interrupt);
        ("NdisMDeregisterInterrupt", ndis_m_deregister_interrupt);
        ("NdisOpenConfiguration", ndis_open_configuration);
        ("NdisReadConfiguration", ndis_read_configuration);
        ("NdisCloseConfiguration", ndis_close_configuration);
        ("NdisAllocateMemoryWithTag", ndis_allocate_memory_with_tag);
        ("NdisFreeMemory", ndis_free_memory);
        ("ExAllocatePoolWithTag", ex_allocate_pool_with_tag);
        ("ExFreePoolWithTag", ex_free_pool_with_tag);
        ("NdisAllocatePacketPool", ndis_allocate_packet_pool);
        ("NdisFreePacketPool", ndis_free_packet_pool);
        ("NdisAllocateBufferPool", ndis_allocate_buffer_pool);
        ("NdisFreeBufferPool", ndis_free_buffer_pool);
        ("NdisAllocatePacket", ndis_allocate_packet);
        ("NdisFreePacket", ndis_free_packet);
        ("NdisAllocateBuffer", ndis_allocate_buffer);
        ("NdisFreeBuffer", ndis_free_buffer);
        ("NdisMIndicateReceivePacket", ndis_m_indicate_receive_packet);
        ("NdisAllocateSpinLock", ndis_allocate_spin_lock);
        ("NdisFreeSpinLock", ndis_free_spin_lock);
        ("NdisAcquireSpinLock", ndis_acquire_spin_lock);
        ("NdisReleaseSpinLock", ndis_release_spin_lock);
        ("NdisDprAcquireSpinLock", ndis_dpr_acquire_spin_lock);
        ("NdisDprReleaseSpinLock", ndis_dpr_release_spin_lock);
        ("NdisMInitializeTimer", ndis_m_initialize_timer);
        ("NdisMSetTimer", ndis_m_set_timer);
        ("NdisMSetPeriodicTimer", ndis_m_set_periodic_timer);
        ("NdisMCancelTimer", ndis_m_cancel_timer);
        ("NdisMMapIoSpace", ndis_m_map_io_space);
        ("NdisReadPciSlotInformation", ndis_read_pci_slot_information);
        ("NdisMoveMemory", ndis_move_memory);
        ("NdisZeroMemory", ndis_zero_memory);
        ("NdisEqualMemory", ndis_equal_memory);
        ("NdisMAllocateSharedMemory", ndis_m_allocate_shared_memory);
        ("NdisMFreeSharedMemory", ndis_m_free_shared_memory);
        ("NdisStallExecution", ndis_stall_execution);
        ("NdisWriteErrorLogEntry", ndis_write_error_log_entry);
        ("KeGetCurrentIrql", ke_get_current_irql);
        ("KeBugCheckEx", ke_bugcheck_ex) ]
  end
