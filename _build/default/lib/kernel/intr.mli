(** Interrupt and deferred-work orchestration.

    The engines (symbolic and concrete) drive interrupt delivery: they
    decide *when* an interrupt fires (for DDT, symbolically — at each
    kernel/driver boundary crossing, §3.3/§4.3), then use these helpers to
    perform the kernel's half of the protocol:

    {v
    begin_isr  ->  run driver ISR at DEVICE_LEVEL
               ->  after_isr (ISR result bit 1 = queue DPC)
               ->  optionally run HandleInterrupt DPC at DISPATCH_LEVEL
               ->  finish restores the interrupted IRQL
    v}

    The ISR return value convention: bit 0 = interrupt recognized,
    bit 1 = queue the HandleInterrupt DPC. *)

type call = { call_addr : int; call_args : int list }

val begin_isr : Kstate.t -> (call * int) option
(** [Some (isr_call, saved_irql)] when an ISR is registered; raises IRQL
    to DEVICE_LEVEL and sets the in-ISR flag. *)

val after_isr : Kstate.t -> saved_irql:int -> isr_ret:int -> call option
(** Clears the in-ISR flag; when the ISR queued a DPC, a HandleInterrupt
    handler exists, and the interrupted code ran below DISPATCH_LEVEL,
    enters DPC context and returns its call. A DPC never preempts
    DISPATCH_LEVEL code (it would be queued); such deferred DPCs are
    dropped in this model. *)

val finish : Kstate.t -> saved_irql:int -> unit
(** Leaves DPC context (if any) and restores the interrupted IRQL. *)

val begin_timer : Kstate.t -> int -> (call * int) option
(** [begin_timer ks timer_addr]: fire a due timer — disarms one-shot
    timers, enters DPC context at DISPATCH_LEVEL. Returns the handler call
    and the saved IRQL. *)

val isr_ctx : Kstate.t -> int
(** Context argument for the ISR: set by [PcNewInterruptSync] for audio
    drivers, otherwise the miniport context. *)
