(** Kernel crash ("blue screen") conditions.

    Raised by kernel API implementations when a driver action would crash
    the real kernel. The engines intercept the exception on the faulting
    path — this is the analog of DDT's kernel-crash-handler hook
    annotation (§3.4.1 of the paper). *)

type code =
  | Irql_not_less_or_equal
  | Bad_timer                 (** timer object used before initialization *)
  | Spin_lock_not_owned
  | Null_handler              (** required entry point missing *)
  | Bad_handle
  | Driver_fault              (** a VM fault surfaced as a crash *)
  | Verifier_detected         (** in-guest Driver Verifier bugcheck *)

exception Bugcheck of code * string

val crash : code -> ('a, unit, string, 'b) format4 -> 'a
(** [crash code fmt ...] raises {!Bugcheck} with a formatted message. *)

val string_of_code : code -> string
