let entry_point_names = [ "initialize"; "play"; "stop"; "isr"; "dpc"; "halt" ]

let pc_register_miniport ks (m : Mach.t) =
  let chars = m.Mach.arg 0 in
  List.iteri
    (fun i name ->
      let addr = m.Mach.read_u32 (chars + (4 * i)) in
      if addr <> 0 then Kstate.set_entry_point ks name addr)
    entry_point_names;
  m.Mach.set_ret Ndis.status_success

let pc_new_interrupt_sync ks (m : Mach.t) =
  let out = m.Mach.arg 0 in
  let isr_func = m.Mach.arg 1 in
  let ctx = m.Mach.arg 2 in
  let a = Kstate.handle_alloc ks ~kind:Kstate.Interrupt_sync ~tag:0 in
  Kstate.set_entry_point ks "isr" isr_func;
  Kstate.set_entry_point ks "isr_ctx" ctx;
  Kstate.set_isr_registered ks true;
  m.Mach.write_u32 out (Ddt_dvm.Layout.kernel_base + (a.Kstate.a_id * 16));
  m.Mach.set_ret Ndis.status_success

let pc_unregister_interrupt_sync ks (m : Mach.t) =
  let h = m.Mach.arg 0 in
  (match Kstate.alloc_of_handle ks h with
   | Some ({ Kstate.a_kind = Kstate.Interrupt_sync; a_freed = false; _ } as a)
     ->
       Kstate.free_alloc ks a;
       Kstate.set_isr_registered ks false
   | _ ->
       Bugcheck.crash Bugcheck.Bad_handle
         "PcUnregisterInterruptSync: invalid handle 0x%x" h);
  m.Mach.set_ret Ndis.status_success

let ke_initialize_spin_lock ks (m : Mach.t) =
  Kstate.init_lock ks (m.Mach.arg 0);
  m.Mach.set_ret Ndis.status_success

let ke_acquire_spin_lock ks (m : Mach.t) =
  Kstate.acquire_lock ks (m.Mach.arg 0) ~dpr:false;
  m.Mach.set_ret Ndis.status_success

let ke_release_spin_lock ks (m : Mach.t) =
  Kstate.release_lock ks (m.Mach.arg 0) ~dpr:false;
  m.Mach.set_ret Ndis.status_success

let ke_acquire_spin_lock_at_dpc ks (m : Mach.t) =
  Kstate.acquire_lock ks (m.Mach.arg 0) ~dpr:true;
  m.Mach.set_ret Ndis.status_success

let ke_release_spin_lock_from_dpc ks (m : Mach.t) =
  Kstate.release_lock ks (m.Mach.arg 0) ~dpr:true;
  m.Mach.set_ret Ndis.status_success

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    List.iter
      (fun (name, impl) -> Kapi.register name impl)
      [ ("PcRegisterMiniport", pc_register_miniport);
        ("PcNewInterruptSync", pc_new_interrupt_sync);
        ("PcUnregisterInterruptSync", pc_unregister_interrupt_sync);
        ("KeInitializeSpinLock", ke_initialize_spin_lock);
        ("KeAcquireSpinLock", ke_acquire_spin_lock);
        ("KeReleaseSpinLock", ke_release_spin_lock);
        ("KeAcquireSpinLockAtDpcLevel", ke_acquire_spin_lock_at_dpc);
        ("KeReleaseSpinLockFromDpcLevel", ke_release_spin_lock_from_dpc) ]
  end
