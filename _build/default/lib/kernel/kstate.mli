(** Minikernel state.

    Everything the kernel knows about the driver under test: resource
    allocations, granted memory regions, spinlocks and the current IRQL,
    timers, registered entry points, the registry, the assigned PCI
    device, and pending deferred work. The whole record is deep-copyable
    because the symbolic engine forks complete system states (§4.1.2 of
    the paper — "each execution state consists conceptually of a complete
    system snapshot").

    Kernel activity is broadcast as {!event}s; dynamic checkers subscribe
    through the (shared, not forked) listener list. Per-path checker
    bookkeeping lives inside this record so it forks with the path. *)

(** {1 IRQLs} *)

val passive_level : int
val dispatch_level : int
val device_level : int

(** {1 Resources} *)

type alloc_kind =
  | Pool
  | Packet
  | Buffer
  | Packet_pool
  | Buffer_pool
  | Config_handle
  | Mapped_io
  | Interrupt_sync

val string_of_alloc_kind : alloc_kind -> string

type alloc = {
  a_id : int;
  a_addr : int;                 (** 0 for handle-only resources *)
  a_size : int;
  a_kind : alloc_kind;
  a_tag : int;
  a_invocation : int;           (** entry-point invocation that made it *)
  mutable a_freed : bool;
}

type region = {
  r_start : int;
  r_size : int;
  r_writable : bool;
  r_note : string;
}

type lock = {
  mutable l_held : bool;
  mutable l_old_irql : int;     (** IRQL saved by the acquiring call *)
  mutable l_dpr : bool;         (** acquired with the Dpr variant *)
  mutable l_seq : int;          (** acquisition order stamp *)
}

type timer = {
  mutable t_func : int;
  mutable t_ctx : int;
  mutable t_armed : bool;
  mutable t_periodic : bool;
}

(** {1 Events} *)

type event =
  | Ev_kcall_enter of string * int      (** API name, pc *)
  | Ev_kcall_leave of string
  | Ev_alloc of alloc
  | Ev_free of alloc
  | Ev_grant of region
  | Ev_revoke of region
  | Ev_lock_acquire of int * bool       (** lock address, dpr variant *)
  | Ev_lock_release of int * bool
  | Ev_irql_set of int * int            (** old, new *)
  | Ev_entry_enter of string
  | Ev_entry_leave of string * int      (** name, return value *)
  | Ev_interrupt of string              (** "isr" / "dpc" / "timer" *)
  | Ev_timer_set of int

type t

type listener = t -> event -> unit

(** {1 Construction and forking} *)

val create :
  ?registry:(string * int) list -> device:Pci.assigned -> unit -> t

val copy : t -> t
(** Deep copy; the listener list is shared between copies. *)

val add_listener : t -> listener -> unit
val emit : t -> event -> unit

(** {1 Accessors used across the kernel and the engines} *)

val device : t -> Pci.assigned
val registry_find : t -> string -> int option
val irql : t -> int
val set_irql : t -> int -> unit
val in_dpc : t -> bool
val set_in_dpc : t -> bool -> unit
val in_isr : t -> bool
val set_in_isr : t -> bool -> unit

val entry_point : t -> string -> int option
val set_entry_point : t -> string -> int -> unit
val driver_ctx : t -> int
val set_driver_ctx : t -> int -> unit
val isr_registered : t -> bool
val set_isr_registered : t -> bool -> unit
val interrupts_masked : t -> bool
val set_interrupts_masked : t -> bool -> unit

val begin_invocation : t -> string -> unit
val end_invocation : t -> string -> int -> unit
val invocation : t -> int

(** {1 Allocation and region tracking} *)

val heap_alloc : t -> size:int -> kind:alloc_kind -> tag:int -> alloc
(** Bump-allocates driver-accessible memory, grants the region, records
    the resource, emits events. *)

val scratch_alloc : t -> size:int -> note:string -> int
(** Bump-allocate and grant a region {e without} recording a driver-owned
    resource — used by the exerciser for buffers it passes to entry points
    (they belong to the kernel, not the driver, so they must not count as
    driver leaks). *)

val handle_alloc : t -> kind:alloc_kind -> tag:int -> alloc
(** A resource with no memory behind it (config handles etc.); the handle
    value is [kernel_base + id * 16]. *)

val alloc_of_handle : t -> int -> alloc option
val alloc_of_addr : t -> int -> alloc option
val free_alloc : t -> alloc -> unit
val live_allocs : t -> alloc list
val live_allocs_of_invocation : t -> int -> alloc list

val grant : t -> region -> unit
val revoke_at : t -> int -> unit
val regions : t -> region list
val region_containing : t -> int -> region option

(** {1 Spinlocks} *)

val lock_at : t -> int -> lock option
val init_lock : t -> int -> unit
val destroy_lock : t -> int -> unit
val acquire_lock : t -> int -> dpr:bool -> unit
val release_lock : t -> int -> dpr:bool -> unit
val held_locks : t -> (int * lock) list
(** In reverse acquisition order (most recent first). *)

(** {1 Timers and deferred work} *)

val timer_at : t -> int -> timer option
val init_timer : t -> addr:int -> func:int -> ctx:int -> unit
val set_timer : t -> addr:int -> periodic:bool -> unit
(** @raise Bugcheck.Bugcheck if the timer object was never initialized —
    the paper's RTL8029 interrupt-before-timer-init crash. *)

val cancel_timer : t -> addr:int -> unit
val due_timers : t -> (int * timer) list
val disarm_timer : t -> int -> unit

(** {1 Statistics} *)

val kcall_count : t -> int
val bump_kcall : t -> unit
