let passive_level = 0
let dispatch_level = 2
let device_level = 6

type alloc_kind =
  | Pool
  | Packet
  | Buffer
  | Packet_pool
  | Buffer_pool
  | Config_handle
  | Mapped_io
  | Interrupt_sync

let string_of_alloc_kind = function
  | Pool -> "pool memory"
  | Packet -> "packet"
  | Buffer -> "buffer"
  | Packet_pool -> "packet pool"
  | Buffer_pool -> "buffer pool"
  | Config_handle -> "configuration handle"
  | Mapped_io -> "mapped I/O space"
  | Interrupt_sync -> "interrupt sync object"

type alloc = {
  a_id : int;
  a_addr : int;
  a_size : int;
  a_kind : alloc_kind;
  a_tag : int;
  a_invocation : int;
  mutable a_freed : bool;
}

type region = {
  r_start : int;
  r_size : int;
  r_writable : bool;
  r_note : string;
}

type lock = {
  mutable l_held : bool;
  mutable l_old_irql : int;
  mutable l_dpr : bool;
  mutable l_seq : int;
}

type timer = {
  mutable t_func : int;
  mutable t_ctx : int;
  mutable t_armed : bool;
  mutable t_periodic : bool;
}

type event =
  | Ev_kcall_enter of string * int
  | Ev_kcall_leave of string
  | Ev_alloc of alloc
  | Ev_free of alloc
  | Ev_grant of region
  | Ev_revoke of region
  | Ev_lock_acquire of int * bool
  | Ev_lock_release of int * bool
  | Ev_irql_set of int * int
  | Ev_entry_enter of string
  | Ev_entry_leave of string * int
  | Ev_interrupt of string
  | Ev_timer_set of int

type t = {
  dev : Pci.assigned;
  mutable registry : (string * int) list;
  allocs : (int, alloc) Hashtbl.t;
  mutable next_alloc_id : int;
  mutable heap_ptr : int;
  locks : (int, lock) Hashtbl.t;
  mutable lock_seq : int;
  mutable cur_irql : int;
  mutable dpc_flag : bool;
  mutable isr_flag : bool;
  timers : (int, timer) Hashtbl.t;
  entry_points : (string, int) Hashtbl.t;
  mutable drv_ctx : int;
  mutable isr_reg : bool;
  mutable ints_masked : bool;
  mutable invocation_counter : int;
  mutable region_list : region list;
  mutable kcalls : int;
  listeners : listener list ref;
}

and listener = t -> event -> unit

let create ?(registry = []) ~device () =
  {
    dev = device;
    registry;
    allocs = Hashtbl.create 32;
    next_alloc_id = 0;
    heap_ptr = Ddt_dvm.Layout.heap_base;
    locks = Hashtbl.create 8;
    lock_seq = 0;
    cur_irql = passive_level;
    dpc_flag = false;
    isr_flag = false;
    timers = Hashtbl.create 8;
    entry_points = Hashtbl.create 8;
    drv_ctx = 0;
    isr_reg = false;
    ints_masked = false;
    invocation_counter = 0;
    region_list = [];
    kcalls = 0;
    listeners = ref [];
  }

let copy t =
  let copy_tbl tbl copy_v =
    let t' = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter (fun k v -> Hashtbl.add t' k (copy_v v)) tbl;
    t'
  in
  {
    t with
    registry = t.registry;
    allocs = copy_tbl t.allocs (fun a -> { a with a_freed = a.a_freed });
    locks = copy_tbl t.locks (fun l -> { l with l_held = l.l_held });
    timers = copy_tbl t.timers (fun tm -> { tm with t_armed = tm.t_armed });
    entry_points = copy_tbl t.entry_points (fun x -> x);
    region_list = t.region_list;
  }

let add_listener t f = t.listeners := f :: !(t.listeners)
let emit t ev = List.iter (fun f -> f t ev) !(t.listeners)

let device t = t.dev
let registry_find t name = List.assoc_opt name t.registry
let irql t = t.cur_irql

let set_irql t v =
  let old = t.cur_irql in
  t.cur_irql <- v;
  if old <> v then emit t (Ev_irql_set (old, v))

let in_dpc t = t.dpc_flag
let set_in_dpc t v = t.dpc_flag <- v
let in_isr t = t.isr_flag
let set_in_isr t v = t.isr_flag <- v

let entry_point t name = Hashtbl.find_opt t.entry_points name
let set_entry_point t name addr = Hashtbl.replace t.entry_points name addr
let driver_ctx t = t.drv_ctx
let set_driver_ctx t v = t.drv_ctx <- v
let isr_registered t = t.isr_reg
let set_isr_registered t v = t.isr_reg <- v
let interrupts_masked t = t.ints_masked
let set_interrupts_masked t v = t.ints_masked <- v

let begin_invocation t name =
  t.invocation_counter <- t.invocation_counter + 1;
  emit t (Ev_entry_enter name)

let end_invocation t name ret = emit t (Ev_entry_leave (name, ret))
let invocation t = t.invocation_counter

(* --- allocation ------------------------------------------------------- *)

let grant t r =
  t.region_list <- r :: t.region_list;
  emit t (Ev_grant r)

let revoke_at t start =
  match List.find_opt (fun r -> r.r_start = start) t.region_list with
  | None -> ()
  | Some r ->
      t.region_list <- List.filter (fun r' -> r' != r) t.region_list;
      emit t (Ev_revoke r)

let regions t = t.region_list

let region_containing t addr =
  List.find_opt
    (fun r -> addr >= r.r_start && addr < r.r_start + r.r_size)
    t.region_list

let heap_alloc t ~size ~kind ~tag =
  let size = max size 4 in
  let addr = t.heap_ptr in
  (* Red zone between allocations so off-by-one accesses land outside
     every granted region. *)
  t.heap_ptr <- addr + ((size + 3) land lnot 3) + 32;
  t.next_alloc_id <- t.next_alloc_id + 1;
  let a =
    { a_id = t.next_alloc_id; a_addr = addr; a_size = size; a_kind = kind;
      a_tag = tag; a_invocation = t.invocation_counter; a_freed = false }
  in
  Hashtbl.replace t.allocs a.a_id a;
  grant t
    { r_start = addr; r_size = size; r_writable = true;
      r_note = string_of_alloc_kind kind };
  emit t (Ev_alloc a);
  a

let scratch_alloc t ~size ~note =
  let size = max size 4 in
  let addr = t.heap_ptr in
  t.heap_ptr <- addr + ((size + 3) land lnot 3) + 32;
  grant t { r_start = addr; r_size = size; r_writable = true; r_note = note };
  addr

let handle_alloc t ~kind ~tag =
  t.next_alloc_id <- t.next_alloc_id + 1;
  let a =
    { a_id = t.next_alloc_id; a_addr = 0; a_size = 0; a_kind = kind;
      a_tag = tag; a_invocation = t.invocation_counter; a_freed = false }
  in
  Hashtbl.replace t.allocs a.a_id a;
  emit t (Ev_alloc a);
  a

let handle_of_alloc a = Ddt_dvm.Layout.kernel_base + (a.a_id * 16)

let alloc_of_handle t h =
  let id = (h - Ddt_dvm.Layout.kernel_base) / 16 in
  match Hashtbl.find_opt t.allocs id with
  | Some a when handle_of_alloc a = h -> Some a
  | _ -> None

let alloc_of_addr t addr =
  Hashtbl.fold
    (fun _ a acc ->
      if a.a_addr = addr && a.a_addr <> 0 then Some a else acc)
    t.allocs None

let free_alloc t a =
  a.a_freed <- true;
  if a.a_addr <> 0 then revoke_at t a.a_addr;
  emit t (Ev_free a)

let live_allocs t =
  Hashtbl.fold (fun _ a acc -> if a.a_freed then acc else a :: acc) t.allocs []
  |> List.sort (fun a b -> compare a.a_id b.a_id)

let live_allocs_of_invocation t inv =
  List.filter (fun a -> a.a_invocation = inv) (live_allocs t)

(* --- spinlocks -------------------------------------------------------- *)

let lock_at t addr = Hashtbl.find_opt t.locks addr

let init_lock t addr =
  Hashtbl.replace t.locks addr
    { l_held = false; l_old_irql = passive_level; l_dpr = false; l_seq = 0 }

let destroy_lock t addr = Hashtbl.remove t.locks addr

let acquire_lock t addr ~dpr =
  let l =
    match lock_at t addr with
    | Some l -> l
    | None ->
        (* Windows tolerates uninitialized NDIS spinlocks being zeroed
           memory; model them as implicitly initialized. *)
        init_lock t addr;
        Option.get (lock_at t addr)
  in
  if l.l_held then
    Bugcheck.crash Bugcheck.Verifier_detected
      "deadlock: recursive acquisition of spinlock 0x%x (the CPU would spin \
       forever at raised IRQL)" addr;
  l.l_held <- true;
  l.l_dpr <- dpr;
  t.lock_seq <- t.lock_seq + 1;
  l.l_seq <- t.lock_seq;
  if not dpr then begin
    l.l_old_irql <- t.cur_irql;
    set_irql t dispatch_level
  end;
  emit t (Ev_lock_acquire (addr, dpr))

let release_lock t addr ~dpr =
  match lock_at t addr with
  | None | Some { l_held = false; _ } ->
      Bugcheck.crash Bugcheck.Spin_lock_not_owned
        "release of spinlock 0x%x which is not held" addr
  | Some l ->
      l.l_held <- false;
      emit t (Ev_lock_release (addr, dpr));
      if not dpr then
        (* Restores whatever IRQL the matching acquire saved — if the lock
           was acquired with the Dpr variant this restores a stale value,
           which is exactly the Intel Pro/100 bug of Table 2. *)
        set_irql t l.l_old_irql

let held_locks t =
  Hashtbl.fold (fun addr l acc -> if l.l_held then (addr, l) :: acc else acc)
    t.locks []
  |> List.sort (fun (_, a) (_, b) -> compare b.l_seq a.l_seq)

(* --- timers ----------------------------------------------------------- *)

let timer_at t addr = Hashtbl.find_opt t.timers addr

let init_timer t ~addr ~func ~ctx =
  Hashtbl.replace t.timers addr
    { t_func = func; t_ctx = ctx; t_armed = false; t_periodic = false }

let set_timer t ~addr ~periodic =
  match timer_at t addr with
  | None ->
      Bugcheck.crash Bugcheck.Bad_timer
        "NdisMSetTimer on uninitialized timer object 0x%x" addr
  | Some tm ->
      tm.t_armed <- true;
      tm.t_periodic <- periodic;
      emit t (Ev_timer_set addr)

let cancel_timer t ~addr =
  match timer_at t addr with
  | None -> ()
  | Some tm -> tm.t_armed <- false

let due_timers t =
  Hashtbl.fold (fun addr tm acc -> if tm.t_armed then (addr, tm) :: acc else acc)
    t.timers []

let disarm_timer t addr =
  match timer_at t addr with
  | Some tm -> if not tm.t_periodic then tm.t_armed <- false
  | None -> ()

let kcall_count t = t.kcalls
let bump_kcall t = t.kcalls <- t.kcalls + 1
