type code =
  | Irql_not_less_or_equal
  | Bad_timer
  | Spin_lock_not_owned
  | Null_handler
  | Bad_handle
  | Driver_fault
  | Verifier_detected

exception Bugcheck of code * string

let string_of_code = function
  | Irql_not_less_or_equal -> "IRQL_NOT_LESS_OR_EQUAL"
  | Bad_timer -> "BAD_TIMER_OBJECT"
  | Spin_lock_not_owned -> "SPIN_LOCK_NOT_OWNED"
  | Null_handler -> "NULL_HANDLER"
  | Bad_handle -> "BAD_HANDLE"
  | Driver_fault -> "DRIVER_FAULT"
  | Verifier_detected -> "DRIVER_VERIFIER_DETECTED_VIOLATION"

let crash code fmt =
  Printf.ksprintf (fun msg -> raise (Bugcheck (code, msg))) fmt
