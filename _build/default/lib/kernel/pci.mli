(** PCI device descriptors and the fake-device "shell" (§4.2 of the
    paper): just enough of a config space to make the kernel load the
    driver and assign resources; the device behind it is fully symbolic. *)

type descriptor = {
  vendor_id : int;
  device_id : int;
  revision : int;
  bar_sizes : int list;        (** sizes of the memory BARs, in order *)
  irq_line : int;
}

val config_space : descriptor -> bytes
(** 64-byte type-0 configuration header encoding the descriptor. BARs are
    filled in by the kernel at resource-assignment time. *)

type assigned = {
  desc : descriptor;
  bars : int list;             (** assigned MMIO base addresses *)
  irq : int;
}

val assign_resources : descriptor -> mmio_base:int -> assigned
(** Allocate BAR addresses sequentially from [mmio_base] (4 KiB aligned). *)

val read_config : assigned -> int -> int
(** Byte read from the (post-assignment) config space. *)
