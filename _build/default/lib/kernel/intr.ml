type call = { call_addr : int; call_args : int list }

let isr_ctx ks =
  match Kstate.entry_point ks "isr_ctx" with
  | Some ctx -> ctx
  | None -> Kstate.driver_ctx ks

let begin_isr ks =
  if not (Kstate.isr_registered ks) then None
  else
    match Kstate.entry_point ks "isr" with
    | None -> None
    | Some addr ->
        let saved = Kstate.irql ks in
        Kstate.set_irql ks Kstate.device_level;
        Kstate.set_in_isr ks true;
        Kstate.emit ks (Kstate.Ev_interrupt "isr");
        Some ({ call_addr = addr; call_args = [ isr_ctx ks ] }, saved)

let after_isr ks ~saved_irql ~isr_ret =
  Kstate.set_in_isr ks false;
  (* A DPC cannot preempt code already running at or above DISPATCH_LEVEL;
     it would be queued and run when the IRQL drops. We model that by
     deferring (dropping) it — DPC coverage comes from interrupts injected
     at PASSIVE_LEVEL boundaries. *)
  if isr_ret land 2 <> 0 && saved_irql < Kstate.dispatch_level then
    match Kstate.entry_point ks "dpc" with
    | Some addr ->
        Kstate.set_irql ks Kstate.dispatch_level;
        Kstate.set_in_dpc ks true;
        Kstate.emit ks (Kstate.Ev_interrupt "dpc");
        Some { call_addr = addr; call_args = [ Kstate.driver_ctx ks ] }
    | None -> None
  else None

let finish ks ~saved_irql =
  Kstate.set_in_dpc ks false;
  Kstate.set_irql ks saved_irql

let begin_timer ks addr =
  match Kstate.timer_at ks addr with
  | None -> None
  | Some tm when not tm.Kstate.t_armed -> None
  | Some tm ->
      Kstate.disarm_timer ks addr;
      let saved = Kstate.irql ks in
      Kstate.set_irql ks Kstate.dispatch_level;
      Kstate.set_in_dpc ks true;
      Kstate.emit ks (Kstate.Ev_interrupt "timer");
      Some
        ({ call_addr = tm.Kstate.t_func; call_args = [ tm.Kstate.t_ctx ] },
         saved)
