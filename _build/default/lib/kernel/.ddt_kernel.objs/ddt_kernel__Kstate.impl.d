lib/kernel/kstate.ml: Bugcheck Ddt_dvm Hashtbl List Option Pci
