lib/kernel/bugcheck.mli:
