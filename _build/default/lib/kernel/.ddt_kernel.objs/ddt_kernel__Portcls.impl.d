lib/kernel/portcls.ml: Bugcheck Ddt_dvm Kapi Kstate List Mach Ndis
