lib/kernel/usb.ml: Array Bugcheck Ddt_solver Kapi Kstate List Mach Printf
