lib/kernel/kstate.mli: Pci
