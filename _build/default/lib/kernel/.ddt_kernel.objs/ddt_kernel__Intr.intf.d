lib/kernel/intr.mli: Kstate
