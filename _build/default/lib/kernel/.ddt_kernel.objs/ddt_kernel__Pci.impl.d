lib/kernel/pci.ml: Bytes List
