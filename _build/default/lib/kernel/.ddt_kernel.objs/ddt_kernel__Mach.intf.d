lib/kernel/mach.mli: Ddt_solver Kstate
