lib/kernel/kapi.ml: Hashtbl Kstate List Mach Printf
