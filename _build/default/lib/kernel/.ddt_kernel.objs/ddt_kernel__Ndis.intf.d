lib/kernel/ndis.mli:
