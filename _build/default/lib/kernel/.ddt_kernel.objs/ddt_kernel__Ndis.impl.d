lib/kernel/ndis.ml: Bugcheck Ddt_dvm Kapi Kstate List Mach Pci
