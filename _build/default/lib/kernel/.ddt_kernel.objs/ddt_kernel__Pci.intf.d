lib/kernel/pci.mli:
