lib/kernel/mach.ml: Buffer Char Ddt_solver Kstate
