lib/kernel/intr.ml: Kstate
