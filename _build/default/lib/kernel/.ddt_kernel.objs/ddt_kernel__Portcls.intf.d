lib/kernel/portcls.mli:
