lib/kernel/bugcheck.ml: Printf
