lib/kernel/kapi.mli: Kstate Mach
