lib/kernel/usb.mli:
