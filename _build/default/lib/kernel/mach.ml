type t = {
  arg : int -> int;
  arg_expr : int -> Ddt_solver.Expr.t;
  set_ret : int -> unit;
  get_ret : unit -> int;
  set_ret_expr : Ddt_solver.Expr.t -> unit;
  read_u32 : int -> int;
  write_u32 : int -> int -> unit;
  read_u8 : int -> int;
  write_u8 : int -> int -> unit;
  read_expr_u32 : int -> Ddt_solver.Expr.t;
  write_expr_u32 : int -> Ddt_solver.Expr.t -> unit;
  read_expr_u8 : int -> Ddt_solver.Expr.t;
  write_expr_u8 : int -> Ddt_solver.Expr.t -> unit;
  fresh_symbolic : string -> Ddt_solver.Expr.width -> Ddt_solver.Expr.t;
  assume : Ddt_solver.Expr.t -> unit;
  fork : (string * (t -> unit)) list -> unit;
  discard : string -> unit;
  cur_pc : unit -> int;
  kstate : unit -> Kstate.t;
}

exception Path_terminated of string

let read_cstring m addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i < 256 then
      let c = m.read_u8 (addr + i) in
      if c <> 0 then begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf
