(** The mini-NDIS kernel API — the network-driver half of the
    kernel/driver interface.

    ABI: every argument is one 32-bit word on the stack (arg 0 at [sp]);
    results return in [r0]. Status codes: 0 SUCCESS, 1 FAILURE,
    2 RESOURCES, 3 PENDING, 4 NOT_SUPPORTED.

    Miniport characteristics block passed to [NdisMRegisterMiniport]
    (eight words): Initialize, QueryInformation, SetInformation, Send,
    ISR, HandleInterrupt (DPC), Halt, Reset handlers.

    APIs restricted to PASSIVE_LEVEL crash with
    [IRQL_NOT_LESS_OR_EQUAL] when invoked at or above DISPATCH_LEVEL,
    like the real kernel: the configuration APIs, [NdisMMapIoSpace], and
    paged-pool allocation. *)

val status_success : int
val status_failure : int
val status_resources : int
val status_pending : int
val status_not_supported : int

(** Characteristics-block word offsets, in registration order. *)
val entry_point_names : string list
(** ["initialize"; "query"; "set"; "send"; "isr"; "dpc"; "halt"; "reset"] *)

val install : unit -> unit
(** Register all NDIS API implementations with {!Kapi}. Idempotent. *)
