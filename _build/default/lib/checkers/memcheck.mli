(** VM-level memory access verification (§3.1.1 of the paper).

    On every driver memory access, verifies the driver has the right to
    touch that address. Permitted targets:

    - dynamically allocated memory and buffers granted by the kernel;
    - the driver image's own data/bss (and reads of its text);
    - the current stack {e at or above} the stack pointer — accesses below
      [sp] are prohibited because an interrupt handler may overwrite them
      (the paper calls this rule out explicitly);
    - hardware MMIO ranges of the assigned device.

    Beyond the concrete address, the checker bounds the {e symbolic}
    address expression with interval reasoning over the path condition:
    if the feasible range escapes every granted region the access is
    reported even though the concretized address happened to be in
    bounds — this is how the unchecked [MaximumMulticastList] registry
    parameter of the RTL8029 driver is caught. *)

type t

val create :
  sink:Report.sink -> driver:string -> loaded:Ddt_dvm.Image.loaded ->
  symdev:Ddt_hw.Symdev.t -> t

val on_mem_access : t -> Ddt_symexec.Exec.mem_access -> unit
