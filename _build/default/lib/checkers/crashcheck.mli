(** Kernel-crash interception (§3.1, §3.4.1).

    Converts crashed execution states — VM faults in driver code, kernel
    bugchecks, Driver-Verifier-style violations — into bug reports. Crashes
    that happen in interrupt context (in an ISR or DPC reached through a
    symbolic interrupt) are classified as race conditions, matching how
    the paper attributes its Table 2 findings. *)

type t

val create : sink:Report.sink -> driver:string -> t

val on_state_done : t -> Ddt_symexec.Symstate.t -> unit
