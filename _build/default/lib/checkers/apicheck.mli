(** Kernel API usage-contract checking — the "incorrect uses of kernel
    APIs" bug class of §2, beyond what the lock checker covers.

    Rules:
    - [NdisFreeMemory] must pass the same length that was allocated
      (the kernel trusts the caller's length for pool bookkeeping);
    - [NdisMRegisterInterrupt] requires the miniport context to be set
      ([NdisMSetAttributes]) first — otherwise the ISR receives a null
      context;
    - allocation sizes must be non-zero. *)

type t

val create : sink:Report.sink -> driver:string -> t

val on_kcall_enter :
  t -> Ddt_symexec.Symstate.t -> string -> Ddt_kernel.Mach.t -> unit
