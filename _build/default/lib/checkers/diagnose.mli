(** Automated bug analysis and classification (§3.6 of the paper).

    The paper does this manually ("the analyses took a maximum of 20
    minutes per bug") and suggests tools could automate it; this module is
    that tool. From a bug's trace, choices and replay script it derives:

    - a user-readable one-liner ("driver crashes in low-memory
      situations", "requires an interrupt while the driver initializes");
    - the technical chain ("AllocateMemory failed at pc1 caused a null
      pointer dereference at pc2");
    - the {e hardware-dependence verdict}: given the device's
      specification (which values each register can legally produce),
      whether the failing path requires a malfunctioning device — the
      paper's §3.6 criterion: if the concrete device reads on the failing
      path fall outside the specified ranges, the bug only occurs when
      the hardware misbehaves. *)

(** What each device register may legally read as, per the vendor
    specification: byte ranges keyed by BAR-relative offset. *)
type device_spec = {
  ds_registers : (string * int * int) list;
      (** (symbolic read name prefix, min byte, max byte); names follow
          {!Ddt_hw.Symdev.fresh_read}: ["hw_bar0+0x4"] *)
  ds_default : int * int;  (** range for unlisted registers *)
}

val permissive_spec : device_spec
(** Any register may read as any byte — no bug is ever blamed on the
    hardware. *)

type hardware_verdict =
  | Any_hardware           (** occurs with spec-conforming devices *)
  | Malfunction_only       (** requires out-of-spec device behavior *)
  | No_hardware_dependence (** the path reads no device registers *)

type analysis = {
  a_headline : string;          (** the user-readable message *)
  a_technical : string list;    (** the causal chain, one step per line *)
  a_hardware : hardware_verdict;
  a_depends_on : string list;   (** symbolic inputs the path depends on *)
}

val analyze : ?spec:device_spec -> Report.bug -> analysis

val pp : Format.formatter -> analysis -> unit
