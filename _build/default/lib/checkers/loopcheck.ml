module St = Ddt_symexec.Symstate

type t = {
  sink : Report.sink;
  driver : string;
}

let create ~sink ~driver = { sink; driver }

let on_state_done t (st : St.t) =
  match st.St.status with
  | Some St.Exhausted ->
      Report.report t.sink
        {
          Report.b_kind = Report.Infinite_loop;
          b_driver = t.driver;
          b_entry = st.St.entry_name;
          b_pc = st.St.pc;
          b_message =
            Printf.sprintf
              "entry point %s did not return within %d instructions (looping \
               near pc 0x%x); the machine hangs at raised IRQL"
              st.St.entry_name st.St.steps st.St.pc;
          b_key = Printf.sprintf "loop:%s:%s" t.driver st.St.entry_name;
          b_state_id = st.St.id;
          b_events = st.St.trace;
          b_choices = st.St.choices;
          b_with_interrupt = st.St.injections > 0;
      b_replay = Ddt_symexec.Exec.replay_script st;
        }
  | _ -> ()
