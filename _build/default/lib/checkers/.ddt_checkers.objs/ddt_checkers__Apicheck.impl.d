lib/checkers/apicheck.ml: Ddt_kernel Ddt_symexec Printf Report
