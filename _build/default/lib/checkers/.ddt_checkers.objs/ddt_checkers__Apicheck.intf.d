lib/checkers/apicheck.mli: Ddt_kernel Ddt_symexec Report
