lib/checkers/diagnose.mli: Format Report
