lib/checkers/memcheck.mli: Ddt_dvm Ddt_hw Ddt_symexec Report
