lib/checkers/memcheck.ml: Ddt_dvm Ddt_hw Ddt_kernel Ddt_solver Ddt_symexec Printf Report
