lib/checkers/leakcheck.mli: Ddt_symexec Report
