lib/checkers/crashcheck.ml: Ddt_kernel Ddt_symexec Printf Report String
