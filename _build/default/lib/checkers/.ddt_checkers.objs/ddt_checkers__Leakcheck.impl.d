lib/checkers/leakcheck.ml: Ddt_kernel Ddt_symexec Hashtbl List Printf Report String
