lib/checkers/lockcheck.ml: Ddt_kernel Ddt_symexec List Printf Report String
