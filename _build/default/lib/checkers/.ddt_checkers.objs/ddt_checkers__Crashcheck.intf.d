lib/checkers/crashcheck.mli: Ddt_symexec Report
