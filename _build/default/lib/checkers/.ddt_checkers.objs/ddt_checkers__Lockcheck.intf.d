lib/checkers/lockcheck.mli: Ddt_kernel Ddt_symexec Report
