lib/checkers/loopcheck.mli: Ddt_symexec Report
