lib/checkers/report.mli: Ddt_trace Format
