lib/checkers/diagnose.ml: Ddt_trace Format List Printf Report String
