lib/checkers/report.ml: Ddt_trace Format Hashtbl List String
