lib/checkers/loopcheck.ml: Ddt_symexec Printf Report
