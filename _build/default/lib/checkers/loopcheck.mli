(** Hang / infinite-loop detection ([34] in the paper).

    A state that exhausts its per-path instruction budget without
    terminating is flagged: driver code that never returns to the kernel
    hangs the machine at raised IRQL. The coverage heuristic already
    starves polling loops, so a state only reaches its full budget when
    every schedule keeps it spinning. *)

type t

val create : sink:Report.sink -> driver:string -> t

val on_state_done : t -> Ddt_symexec.Symstate.t -> unit
