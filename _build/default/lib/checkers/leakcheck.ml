module Kstate = Ddt_kernel.Kstate
module St = Ddt_symexec.Symstate

type t = {
  sink : Report.sink;
  driver : string;
}

let create ~sink ~driver = { sink; driver }

let describe allocs =
  let by_kind = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let k = Kstate.string_of_alloc_kind a.Kstate.a_kind in
      Hashtbl.replace by_kind k
        (1 + try Hashtbl.find by_kind k with Not_found -> 0))
    allocs;
  Hashtbl.fold (fun k n acc -> Printf.sprintf "%d %s" n k :: acc) by_kind []
  |> List.sort compare |> String.concat ", "

let report_leak t (st : St.t) allocs ~context =
  Report.report t.sink
    {
      Report.b_kind = Report.Resource_leak;
      b_driver = t.driver;
      b_entry = st.St.entry_name;
      b_pc = st.St.pc;
      b_message =
        Printf.sprintf "%s: %s not released (%s)" context (describe allocs)
          (String.concat ", "
             (List.map
                (fun a ->
                  Printf.sprintf "%s id=%d"
                    (Kstate.string_of_alloc_kind a.Kstate.a_kind)
                    a.Kstate.a_id)
                allocs));
      b_key = Printf.sprintf "leak:%s:%s" t.driver st.St.entry_name;
      b_state_id = st.St.id;
      b_events = st.St.trace;
      b_choices = st.St.choices;
      b_with_interrupt = st.St.injections > 0;
      b_replay = Ddt_symexec.Exec.replay_script st;
    }

let on_state_done t (st : St.t) =
  match st.St.status with
  | Some (St.Returned ret) -> (
      let ks = st.St.ks in
      match st.St.entry_name with
      | "halt" ->
          let leaked = Kstate.live_allocs ks in
          if leaked <> [] then
            report_leak t st leaked ~context:"resources still held after Halt"
      | "load" -> ()
      | entry when ret <> 0 ->
          (* A failing entry point must undo everything it acquired during
             this invocation. *)
          let leaked =
            Kstate.live_allocs_of_invocation ks (Kstate.invocation ks)
          in
          if leaked <> [] then
            report_leak t st leaked
              ~context:
                (Printf.sprintf
                   "%s failed (status %d) without releasing already-acquired \
                    resources"
                   entry ret)
      | _ -> ())
  | _ -> ()
