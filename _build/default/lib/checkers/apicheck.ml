module Kstate = Ddt_kernel.Kstate
module Mach = Ddt_kernel.Mach
module St = Ddt_symexec.Symstate

type t = {
  sink : Report.sink;
  driver : string;
}

let create ~sink ~driver = { sink; driver }

let bug t (st : St.t) ~key ~msg =
  Report.report t.sink
    {
      Report.b_kind = Report.Kernel_crash;
      b_driver = t.driver;
      b_entry = st.St.entry_name;
      b_pc = st.St.pc;
      b_message = msg;
      b_key = Printf.sprintf "api:%s:%s" t.driver key;
      b_state_id = st.St.id;
      b_events = st.St.trace;
      b_choices = st.St.choices;
      b_with_interrupt = st.St.injections > 0;
      b_replay = Ddt_symexec.Exec.replay_script st;
    }

let on_kcall_enter t (st : St.t) name (m : Mach.t) =
  let ks = st.St.ks in
  match name with
  | "NdisFreeMemory" -> (
      let addr = m.Mach.arg 0 in
      let len = m.Mach.arg 1 in
      match Kstate.alloc_of_addr ks addr with
      | Some a when (not a.Kstate.a_freed) && a.Kstate.a_size <> len ->
          bug t st
            ~key:(Printf.sprintf "freelen:0x%x" st.St.pc)
            ~msg:
              (Printf.sprintf
                 "NdisFreeMemory called with length %d for an allocation of \
                  %d bytes; the pool bookkeeping trusts the caller and \
                  corrupts adjacent blocks"
                 len a.Kstate.a_size)
      | _ -> ())
  | "NdisMRegisterInterrupt" ->
      if Kstate.driver_ctx ks = 0 then
        bug t st ~key:"isr-noctx"
          ~msg:
            "NdisMRegisterInterrupt before NdisMSetAttributes: the ISR \
             would be invoked with a null miniport context"
  | "NdisAllocateMemoryWithTag" | "ExAllocatePoolWithTag" ->
      (* Both APIs carry the size as their second argument. *)
      if m.Mach.arg 1 = 0 then
        bug t st
          ~key:(Printf.sprintf "zeroalloc:0x%x" st.St.pc)
          ~msg:(name ^ " called with a zero size")
  | _ -> ()
