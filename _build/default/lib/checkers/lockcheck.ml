module Kstate = Ddt_kernel.Kstate
module Mach = Ddt_kernel.Mach
module St = Ddt_symexec.Symstate

type t = {
  sink : Report.sink;
  driver : string;
}

let create ~sink ~driver = { sink; driver }

let bug t (st : St.t) ~key ~msg =
  Report.report t.sink
    {
      Report.b_kind = Report.Lock_misuse;
      b_driver = t.driver;
      b_entry = st.St.entry_name;
      b_pc = st.St.pc;
      b_message = msg;
      b_key = Printf.sprintf "lock:%s:%s" t.driver key;
      b_state_id = st.St.id;
      b_events = st.St.trace;
      b_choices = st.St.choices;
      b_with_interrupt = st.St.injections > 0;
      b_replay = Ddt_symexec.Exec.replay_script st;
    }

let acquire_names = [ "NdisAcquireSpinLock"; "KeAcquireSpinLock" ]
let acquire_dpr_names =
  [ "NdisDprAcquireSpinLock"; "KeAcquireSpinLockAtDpcLevel" ]
let release_names = [ "NdisReleaseSpinLock"; "KeReleaseSpinLock" ]
let release_dpr_names =
  [ "NdisDprReleaseSpinLock"; "KeReleaseSpinLockFromDpcLevel" ]

let on_kcall_enter t (st : St.t) name (m : Mach.t) =
  let ks = st.St.ks in
  let is_acquire = List.mem name acquire_names in
  let is_acquire_dpr = List.mem name acquire_dpr_names in
  let is_release = List.mem name release_names in
  let is_release_dpr = List.mem name release_dpr_names in
  if is_acquire || is_acquire_dpr || is_release || is_release_dpr then begin
    let lock_addr = m.Mach.arg 0 in
    let lock = Kstate.lock_at ks lock_addr in
    if is_acquire || is_acquire_dpr then begin
      (match lock with
       | Some { Kstate.l_held = true; _ } ->
           bug t st
             ~key:(Printf.sprintf "deadlock:0x%x" lock_addr)
             ~msg:
               (Printf.sprintf
                  "deadlock: %s on spinlock 0x%x already held on this path"
                  name lock_addr)
       | _ -> ());
      if is_acquire_dpr && Kstate.irql ks < Kstate.dispatch_level then
        bug t st
          ~key:(Printf.sprintf "dpracq:0x%x" lock_addr)
          ~msg:
            (Printf.sprintf
               "%s called below DISPATCH_LEVEL (IRQL %d); the Dpr variants \
                are only legal from DPC context"
               name (Kstate.irql ks))
    end
    else begin
      (* Releases. *)
      (match lock with
       | Some { Kstate.l_held = true; l_dpr; l_seq; _ } ->
           if is_release && Kstate.in_dpc ks then
             bug t st
               ~key:(Printf.sprintf "wrongrel:0x%x" lock_addr)
               ~msg:
                 (Printf.sprintf
                    "%s called from a DPC for spinlock 0x%x; this restores a \
                     stale IRQL and can hang or crash the kernel (use the \
                     Dpr variant)"
                    name lock_addr)
           else if is_release_dpr && not l_dpr then
             bug t st
               ~key:(Printf.sprintf "wrongreldpr:0x%x" lock_addr)
               ~msg:
                 (Printf.sprintf
                    "%s releases spinlock 0x%x that was acquired with the \
                     IRQL-raising variant; the saved IRQL is never restored"
                    name lock_addr);
           (* LIFO order: some other held lock was acquired later. *)
           let newer =
             List.filter
               (fun (a, l) -> a <> lock_addr && l.Kstate.l_seq > l_seq)
               (Kstate.held_locks ks)
           in
           (match newer with
            | (other, _) :: _ ->
                bug t st
                  ~key:(Printf.sprintf "order:0x%x" lock_addr)
                  ~msg:
                    (Printf.sprintf
                       "out-of-order release: spinlock 0x%x released while \
                        more recently acquired spinlock 0x%x is still held"
                       lock_addr other)
            | [] -> ())
       | _ ->
           (* Release of a non-held lock also bugchecks in the kernel; the
              report here gives the friendlier verifier-style message. *)
           bug t st
             ~key:(Printf.sprintf "extrarel:0x%x" lock_addr)
             ~msg:
               (Printf.sprintf
                  "%s on spinlock 0x%x which is not held (extra release)" name
                  lock_addr))
    end
  end

let on_state_done t (st : St.t) =
  match st.St.status with
  | Some (St.Returned _) ->
      let held = Kstate.held_locks st.St.ks in
      if held <> [] then
        bug t st
          ~key:
            (Printf.sprintf "heldexit:%s:%d" st.St.entry_name
               (List.length held))
          ~msg:
            (Printf.sprintf
               "entry point %s returned with %d spinlock(s) still held (%s)"
               st.St.entry_name (List.length held)
               (String.concat ", "
                  (List.map (fun (a, _) -> Printf.sprintf "0x%x" a) held)))
  | _ -> ()
