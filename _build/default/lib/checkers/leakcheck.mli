(** Resource-leak detection.

    Driver contract (the one Driver Verifier enforces and the paper's
    Table 2 leaks violate): when an entry point fails — most notably
    Initialize returning a non-success status — every resource acquired
    during that invocation must have been released; and when the driver is
    halted, nothing may remain allocated at all. Runs on each terminated
    state, inspecting the per-invocation allocation ledger the kernel
    keeps. *)

type t

val create : sink:Report.sink -> driver:string -> t

val on_state_done : t -> Ddt_symexec.Symstate.t -> unit
