module Kstate = Ddt_kernel.Kstate
module St = Ddt_symexec.Symstate

type t = {
  sink : Report.sink;
  driver : string;
}

let create ~sink ~driver = { sink; driver }

let kind_of (st : St.t) (c : St.crash) =
  let interrupt_context =
    Kstate.in_isr st.St.ks || Kstate.in_dpc st.St.ks || st.St.pending <> []
  in
  if interrupt_context && st.St.injections > 0 then Report.Race_condition
  else if
    c.St.c_code = "DRIVER_FAULT"
    && (String.length c.St.c_msg >= 4 && String.sub c.St.c_msg 0 4 = "null")
  then Report.Segfault
  else if c.St.c_code = "DRIVER_FAULT" then Report.Segfault
  else Report.Kernel_crash

let on_state_done t (st : St.t) =
  match st.St.status with
  | Some (St.Crashed c) ->
      Report.report t.sink
        {
          Report.b_kind = kind_of st c;
          b_driver = t.driver;
          b_entry = st.St.entry_name;
          b_pc = c.St.c_pc;
          b_message = Printf.sprintf "%s: %s" c.St.c_code c.St.c_msg;
          b_key = Printf.sprintf "crash:%s:%s:0x%x" t.driver c.St.c_code c.St.c_pc;
          b_state_id = st.St.id;
          b_events = st.St.trace;
          b_choices = st.St.choices;
          b_with_interrupt = st.St.injections > 0;
      b_replay = Ddt_symexec.Exec.replay_script st;
        }
  | _ -> ()
