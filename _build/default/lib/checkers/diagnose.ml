module Event = Ddt_trace.Event
module Replay = Ddt_trace.Replay

type device_spec = {
  ds_registers : (string * int * int) list;
  ds_default : int * int;
}

let permissive_spec = { ds_registers = []; ds_default = (0, 255) }

type hardware_verdict =
  | Any_hardware
  | Malfunction_only
  | No_hardware_dependence

type analysis = {
  a_headline : string;
  a_technical : string list;
  a_hardware : hardware_verdict;
  a_depends_on : string list;
}

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let alloc_apis =
  [ "NdisAllocateMemoryWithTag"; "ExAllocatePoolWithTag";
    "NdisAllocatePacketPool"; "NdisAllocateBufferPool"; "NdisAllocatePacket";
    "NdisAllocateBuffer"; "PcNewInterruptSync" ]

(* Which failure-class choices were taken on the path. *)
let failed_allocs (b : Report.bug) =
  List.filter_map
    (fun (api, choice) ->
      if choice = "failure" && List.mem api alloc_apis then Some api else None)
    b.Report.b_choices

(* The interrupt injections on the path, oldest first. *)
let interrupts (b : Report.bug) =
  List.rev
    (List.filter_map
       (fun ev ->
         match ev with
         | Event.E_interrupt { site; phase } when phase = "isr" ->
             Some site
         | _ -> None)
       b.Report.b_events)

(* Device reads the failing path depended on, with the concrete values the
   replay evidence pins them to: MMIO reads ("hw_...") and USB transfer
   payloads/lengths ("usb_..."). *)
let device_reads (b : Report.bug) =
  List.filter
    (fun (name, _) ->
      starts_with ~prefix:"hw_" name || starts_with ~prefix:"usb_" name)
    b.Report.b_replay.Replay.rs_inputs

let spec_range spec name =
  let rec find = function
    | [] -> spec.ds_default
    | (prefix, lo, hi) :: rest ->
        if starts_with ~prefix name then (lo, hi) else find rest
  in
  find spec.ds_registers

let hardware_verdict spec b =
  match device_reads b with
  | [] -> No_hardware_dependence
  | reads ->
      (* §3.6: if a pinned device-read value falls outside the range the
         specification allows for that register, the path needs the
         hardware to misbehave. *)
      let out_of_spec =
        List.exists
          (fun (name, v) ->
            let lo, hi = spec_range spec name in
            v < lo || v > hi)
          reads
      in
      if out_of_spec then Malfunction_only else Any_hardware

let headline (b : Report.bug) =
  let fails = failed_allocs b in
  let irqs = interrupts b in
  match b.Report.b_kind with
  | Report.Resource_leak when fails <> [] ->
      "driver leaks resources in low-memory situations"
  | Report.Segfault when fails <> [] ->
      "driver crashes in low-memory situations"
  | Report.Race_condition when irqs <> [] ->
      Printf.sprintf "driver crashes if an interrupt arrives %s"
        (List.hd irqs)
  | Report.Memory_error ->
      "driver corrupts memory when given an unchecked input"
  | Report.Infinite_loop -> "driver can hang the machine"
  | Report.Lock_misuse -> "driver violates the spinlock protocol"
  | Report.Kernel_crash -> "driver action crashes the kernel"
  | Report.Segfault -> "driver dereferences an invalid pointer"
  | Report.Race_condition -> "driver has a timing-dependent failure"
  | Report.Resource_leak -> "driver leaks resources"

let technical (b : Report.bug) =
  let steps = ref [] in
  let push fmt = Printf.ksprintf (fun s -> steps := s :: !steps) fmt in
  List.iter
    (fun (api, choice) ->
      if choice = "failure" then push "%s failed (explored value class)" api)
    b.Report.b_choices;
  List.iter (fun site -> push "symbolic interrupt delivered %s" site)
    (interrupts b);
  (let reads = device_reads b in
   let rec take n = function
     | [] -> []
     | x :: r -> if n = 0 then [] else x :: take (n - 1) r
   in
   List.iter
     (fun (name, v) -> push "device read %s returned 0x%x" name v)
     (take 4 reads);
   if List.length reads > 4 then
     push "... and %d further device reads" (List.length reads - 4));
  push "%s at pc 0x%x: %s"
    (Report.string_of_kind b.Report.b_kind)
    b.Report.b_pc b.Report.b_message;
  List.rev !steps

let analyze ?(spec = permissive_spec) (b : Report.bug) =
  {
    a_headline = headline b;
    a_technical = technical b;
    a_hardware = hardware_verdict spec b;
    a_depends_on =
      List.map fst b.Report.b_replay.Replay.rs_inputs
      |> List.sort_uniq compare;
  }

let pp fmt a =
  Format.fprintf fmt "%s@." a.a_headline;
  List.iter (fun s -> Format.fprintf fmt "  - %s@." s) a.a_technical;
  (match a.a_hardware with
   | No_hardware_dependence ->
       Format.fprintf fmt "  hardware: path independent of device output@."
   | Any_hardware ->
       Format.fprintf fmt
         "  hardware: reproducible with a specification-conforming device@."
   | Malfunction_only ->
       Format.fprintf fmt
         "  hardware: requires device behavior outside its specification \
          (malfunction)@.");
  if a.a_depends_on <> [] then begin
    let shown, rest =
      let rec take n = function
        | [] -> ([], [])
        | x :: r when n > 0 ->
            let s, rest = take (n - 1) r in
            (x :: s, rest)
        | l -> ([], l)
      in
      take 6 a.a_depends_on
    in
    Format.fprintf fmt "  depends on: %s%s@." (String.concat ", " shown)
      (match rest with
       | [] -> ""
       | _ -> Printf.sprintf " (+%d more)" (List.length rest))
  end
