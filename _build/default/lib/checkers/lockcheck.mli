(** Spinlock and IRQL discipline checking — the guest-OS-level verifier
    analog (Driver Verifier's lock rules, §3.1.2).

    Detected violations:
    - acquiring a spinlock already held on this path (self-deadlock);
    - releasing with the wrong variant for the context: plain
      [NdisReleaseSpinLock] from a DPC (the Intel Pro/100 bug), or the
      [Dpr] variant for a lock acquired with the plain one;
    - releasing locks out of acquisition (LIFO) order;
    - returning from an entry point with locks still held;
    - calling [Dpr]-acquire outside DPC context. *)

type t

val create : sink:Report.sink -> driver:string -> t

val on_kcall_enter :
  t -> Ddt_symexec.Symstate.t -> string -> Ddt_kernel.Mach.t -> unit

val on_state_done : t -> Ddt_symexec.Symstate.t -> unit
