lib/annot/ndis_annotations.ml: Annot Ddt_kernel Ddt_solver
