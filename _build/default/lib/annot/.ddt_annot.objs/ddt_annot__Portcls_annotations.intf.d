lib/annot/portcls_annotations.mli: Annot
