lib/annot/ndis_annotations.mli: Annot
