lib/annot/portcls_annotations.ml: Annot Ddt_kernel
