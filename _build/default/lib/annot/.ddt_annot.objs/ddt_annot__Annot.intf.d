lib/annot/annot.mli: Ddt_kernel
