lib/annot/annot.ml: Ddt_kernel List Option
