let common = {|
// usbnic -- USB 2.0 Ethernet adapter miniport (rtl8150-class)
const TAG       = 0x55534238;
const CTX_SIZE  = 256;
const URB_SIZE  = 32;
const SLOT_SIZE = 64;
const RX_SLOTS  = 4;

// urb word offsets
const U_EP   = 0;
const U_DIR  = 4;
const U_BUF  = 8;
const U_LEN  = 12;
const U_STS  = 16;
const U_ACT  = 20;

int g_ctx;
int g_rx_ring;     // RX_SLOTS slots of SLOT_SIZE bytes
int g_rx_urb;
int g_ready;       // completion handler may touch the ring only when set
int g_stats_rx;
int g_stats_tx;
int chars[8];

int submit_rx(int ctx) {
  *(g_rx_urb + U_EP) = 1;
  *(g_rx_urb + U_DIR) = 1;                  // IN
  *(g_rx_urb + U_BUF) = g_rx_ring;
  *(g_rx_urb + U_LEN) = SLOT_SIZE;
  return UsbSubmitUrb(g_rx_urb);
}

int send(int pkt, int len) {
  if (g_ctx == 0) { return 1; }
  if (len < 14) { return 1; }
  int urb;
  int status = NdisAllocateMemoryWithTag(&urb, URB_SIZE, TAG);
  if (status != 0) { return 1; }
  *(urb + U_EP) = 2;
  *(urb + U_DIR) = 0;                       // OUT
  *(urb + U_BUF) = pkt;
  *(urb + U_LEN) = len;
  status = UsbSubmitUrb(urb);
  NdisFreeMemory(urb, URB_SIZE, 0);
  if (status != 0) { return 1; }
  g_stats_tx = g_stats_tx + 1;
  return 0;
}

int query(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (oid == 1) { *buf = 2; return 0; }
  if (oid == 2) { *buf = g_stats_rx; return 0; }
  return 4;
}

int set_information(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (oid == 2) { g_stats_rx = 0; return 0; }
  return 4;
}

int halt(void) {
  if (g_ctx == 0) { return 0; }
  UsbUnregisterInterruptEndpoint(1);
  if (g_rx_urb != 0) { NdisFreeMemory(g_rx_urb, URB_SIZE, 0); g_rx_urb = 0; }
  if (g_rx_ring != 0) {
    NdisFreeMemory(g_rx_ring, SLOT_SIZE * RX_SLOTS, 0);
    g_rx_ring = 0;
  }
  NdisFreeMemory(g_ctx, CTX_SIZE, 0);
  g_ctx = 0;
  g_ready = 0;
  return 0;
}

int driver_entry(void) {
  chars[0] = initialize;
  chars[1] = query;
  chars[2] = set_information;
  chars[3] = send;
  chars[6] = halt;
  return NdisMRegisterMiniport(chars);
}
|}

let source = {|
int rx_complete(int ctx) {
  // BUG (race): touches the ring without checking g_ready -- the
  // interrupt endpoint is live before initialization publishes the ring.
  int n = *(g_rx_urb + U_ACT);
  // BUG (memory corruption): the device-reported actual length indexes
  // into the current (last) ring slot unchecked; a malfunctioning or
  // malicious device walks right off the end of the ring.
  __stb(g_rx_ring + (RX_SLOTS - 1) * SLOT_SIZE + n, 0);
  g_stats_rx = g_stats_rx + 1;
  return 1;
}

int initialize(void) {
  int ctx;
  int desc[5];
  int status;

  status = NdisAllocateMemoryWithTag(&ctx, CTX_SIZE, TAG);
  if (status != 0) { return 1; }
  g_ctx = ctx;
  NdisMSetAttributes(ctx);

  int got = UsbGetDeviceDescriptor(desc, 18);
  if (got < 18) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }

  status = NdisAllocateMemoryWithTag(&g_rx_urb, URB_SIZE, TAG);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }

  // BUG window: the completion handler is registered before the receive
  // ring exists and before g_ready is set.
  status = UsbRegisterInterruptEndpoint(1, rx_complete, ctx);
  if (status != 0) {
    NdisFreeMemory(g_rx_urb, URB_SIZE, 0);
    g_rx_urb = 0;
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }

  status = NdisAllocateMemoryWithTag(&g_rx_ring, SLOT_SIZE * RX_SLOTS, TAG);
  if (status != 0) {
    UsbUnregisterInterruptEndpoint(1);
    NdisFreeMemory(g_rx_urb, URB_SIZE, 0);
    g_rx_urb = 0;
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  g_ready = 1;
  submit_rx(ctx);
  return 0;
}
|} ^ common

let fixed_source = {|
int rx_complete(int ctx) {
  if (g_ready == 0) { return 0; }
  int n = *(g_rx_urb + U_ACT);
  if (__ltu(SLOT_SIZE - 1, n)) { n = SLOT_SIZE - 1; }
  __stb(g_rx_ring + (RX_SLOTS - 1) * SLOT_SIZE + n, 0);
  g_stats_rx = g_stats_rx + 1;
  return 1;
}

int initialize(void) {
  int ctx;
  int desc[5];
  int status;

  status = NdisAllocateMemoryWithTag(&ctx, CTX_SIZE, TAG);
  if (status != 0) { return 1; }
  g_ctx = ctx;
  NdisMSetAttributes(ctx);

  int got = UsbGetDeviceDescriptor(desc, 18);
  if (got < 18) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }

  status = NdisAllocateMemoryWithTag(&g_rx_urb, URB_SIZE, TAG);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }

  status = NdisAllocateMemoryWithTag(&g_rx_ring, SLOT_SIZE * RX_SLOTS, TAG);
  if (status != 0) {
    NdisFreeMemory(g_rx_urb, URB_SIZE, 0);
    g_rx_urb = 0;
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  g_ready = 1;

  // The handler goes live only after everything it touches exists.
  status = UsbRegisterInterruptEndpoint(1, rx_complete, ctx);
  if (status != 0) {
    g_ready = 0;
    NdisFreeMemory(g_rx_ring, SLOT_SIZE * RX_SLOTS, 0);
    g_rx_ring = 0;
    NdisFreeMemory(g_rx_urb, URB_SIZE, 0);
    g_rx_urb = 0;
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  submit_rx(ctx);
  return 0;
}
|} ^ common

let memo = ref None
let memo_fixed = ref None

let image () =
  match !memo with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"usbnic" source in
      memo := Some img;
      img

let fixed_image () =
  match !memo_fixed with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"usbnic-fixed" fixed_source in
      memo_fixed := Some img;
      img

let registry = []
