(** A USB network adapter driver — the extension corpus entry exercising
    the mini-USB bus (the paper's §6.1 "no USB support" limitation,
    lifted here).

    Seeded bugs:
    + the receive completion handler trusts the device-reported actual
      transfer length and uses it to index a fixed-size ring slot
      (memory corruption — the USB twin of the RTL8029 registry bug);
    + the interrupt-endpoint completion handler runs against state that
      initialization publishes only after registering it (race). *)

val source : string
val fixed_source : string
val image : unit -> Ddt_dvm.Image.t
val fixed_image : unit -> Ddt_dvm.Image.t
val registry : (string * int) list
