(** The RTL8029-alike NE2000-class NIC driver (smallest driver of
    Table 1), carrying its five Table 2 bugs:

    + missing [NdisCloseConfiguration] when initialization fails
      (resource leak);
    + no range check on the [MaximumMulticastList] registry parameter,
      later used as an array index (memory corruption);
    + interrupt arriving before timer initialization passes an
      uninitialized timer object to the kernel (race → BSOD);
    + unexpected OID in QueryInformation dereferences a never-initialized
      handler pointer (segfault);
    + the same in SetInformation (segfault).

    [fixed_source] repairs all five — DDT must report nothing on it. *)

val source : string
val fixed_source : string
val image : unit -> Ddt_dvm.Image.t
val fixed_image : unit -> Ddt_dvm.Image.t
val registry : (string * int) list
val descriptor : Ddt_kernel.Pci.descriptor
