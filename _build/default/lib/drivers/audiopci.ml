let common = {|
// audiopci -- Ensoniq ES1370-style PCI sound device miniport
const TAG       = 0x31333730;   // '1370'
const CTX_SIZE  = 192;
const DMA_SIZE  = 256;

const R_STATUS  = 0;
const R_ACK     = 4;
const R_SAMPLE  = 8;
const R_DAC     = 12;
const R_CTRL    = 16;

int g_ctx;
int g_mmio;
int g_dma;        // DMA staging buffer, touched by the ISR
int g_sync;
int g_playing;
int g_cur;        // buffer currently being played
int g_pos;
int chars[6];

// The ES1370's sample-rate converter is programmed through a tiny
// register file; compute the phase increment for a target rate.
int src_phase_increment(int hz) {
  if (__ltu(48000, hz)) { hz = 48000; }
  if (__ltu(hz, 4000)) { hz = 4000; }
  return (hz << 16) / 3000;
}

int program_src(int mmio, int hz) {
  int inc = src_phase_increment(hz);
  *(mmio + R_SAMPLE) = inc;
  return inc;
}

// Mixer: AK4531-style attenuation, 0..31 per channel.
int set_dac_volume(int mmio, int left, int right) {
  if (__ltu(31, left)) { left = 31; }
  if (__ltu(31, right)) { right = 31; }
  *(mmio + R_CTRL + 16) = (left << 8) | right;
  return 0;
}

// Negotiate a playback format word: bit0 stereo, bit1 16-bit.
int negotiate_format(int channels, int bits) {
  int fmt = 0;
  if (channels == 2) { fmt = fmt | 1; }
  if (bits == 16) { fmt = fmt | 2; }
  if (channels != 1 && channels != 2) { return 0 - 1; }
  if (bits != 8 && bits != 16) { return 0 - 1; }
  return fmt;
}

int apply_format(int mmio, int channels, int bits) {
  int fmt = negotiate_format(channels, bits);
  if (fmt < 0) { return 1; }
  *(mmio + R_CTRL + 20) = fmt;
  return 0;
}

int stop(void) {
  g_playing = 0;
  if (g_mmio != 0) { *(g_mmio + R_CTRL) = 0; }
  if (g_cur != 0) {
    ExFreePoolWithTag(g_cur, TAG);
    g_cur = 0;
  }
  return 0;
}

int halt(void) {
  stop();
  if (g_sync != 0) {
    PcUnregisterInterruptSync(g_sync);
    g_sync = 0;
  }
  if (g_dma != 0) {
    ExFreePoolWithTag(g_dma, TAG);
    g_dma = 0;
  }
  if (g_ctx != 0) {
    ExFreePoolWithTag(g_ctx, TAG);
    g_ctx = 0;
  }
  return 0;
}

int driver_entry(void) {
  chars[0] = initialize;
  chars[1] = play;
  chars[2] = stop;
  chars[3] = 0;
  chars[4] = 0;
  chars[5] = halt;
  return PcRegisterMiniport(chars);
}
|}

let source = {|
int isr(int ctx) {
  int mmio = g_mmio;
  if (mmio == 0) { return 0; }
  int status = *(mmio + R_STATUS);
  if ((status & 1) == 0) { return 0; }
  *(mmio + R_ACK) = status;
  // BUG (race in init): the DMA staging buffer is touched without a
  // guard; an interrupt during initialization arrives before it exists.
  *(g_dma + 0) = status;
  if (g_playing) {
    // BUG (race while playing): playback is announced before the
    // current-buffer pointer is published.
    *(g_cur + 0) = *(g_cur + 0) + 1;
    g_pos = g_pos + 4;
  }
  return 1;
}

// Shared error path: logs the failure into the scratch block.
int record_failure(int scratch, int code) {
  // BUG (segfault): called on the path where scratch is NULL, despite the
  // allocation having been checked at the call site.
  *(scratch + 0) = code;
  return 1;
}

int initialize(void) {
  int ctx;
  int sync;
  int status;

  ctx = ExAllocatePoolWithTag(0, CTX_SIZE, TAG);
  if (ctx == 0) { return 1; }
  g_ctx = ctx;

  int mmio;
  status = NdisMMapIoSpace(&mmio, 0);
  if (status != 0) {
    ExFreePoolWithTag(ctx, TAG);
    g_ctx = 0;
    return 1;
  }
  g_mmio = mmio;
  program_src(mmio, 44100);
  set_dac_volume(mmio, 4, 4);
  apply_format(mmio, 2, 16);

  int scratch = ExAllocatePoolWithTag(0, 64, TAG);
  if (scratch == 0) {
    // checked here ... but record_failure dereferences it anyway
    record_failure(scratch, 7);
    ExFreePoolWithTag(ctx, TAG);
    g_ctx = 0;
    return 1;
  }

  status = PcNewInterruptSync(&sync, isr, ctx);
  if (status != 0) {
    // BUG (segfault): on failure sync is NULL, yet the error path pokes
    // a field inside the sync object.
    *(sync + 4) = 0;
    ExFreePoolWithTag(scratch, TAG);
    ExFreePoolWithTag(ctx, TAG);
    g_ctx = 0;
    return 1;
  }
  g_sync = sync;

  // BUG window (race in init): the ISR is registered and live against a
  // mapped device, but g_dma is NULL until the next allocation completes.
  int dma = ExAllocatePoolWithTag(0, DMA_SIZE, TAG);
  if (dma == 0) {
    PcUnregisterInterruptSync(sync);
    g_sync = 0;
    ExFreePoolWithTag(scratch, TAG);
    ExFreePoolWithTag(ctx, TAG);
    g_ctx = 0;
    return 1;
  }
  g_dma = dma;

  ExFreePoolWithTag(scratch, TAG);
  return 0;
}

int play(int buf, int len) {
  if (g_ctx == 0) { return 1; }
  if (g_mmio == 0) { return 1; }
  if (len < 4) { return 1; }
  if (__ltu(DMA_SIZE, len)) { len = DMA_SIZE; }

  // BUG (race while playing): g_playing is visible to the ISR before
  // g_cur is published.
  g_playing = 1;
  int staging = ExAllocatePoolWithTag(0, DMA_SIZE, TAG);
  if (staging == 0) {
    g_playing = 0;
    return 1;
  }
  g_cur = staging;
  g_pos = 0;

  int i;
  for (i = 0; i < len; i = i + 1) {
    __stb(staging + i, __ldb(buf + i));
  }
  *(g_mmio + R_DAC) = staging;
  *(g_mmio + R_CTRL) = 1;
  return 0;
}
|} ^ common

let fixed_source = {|
int isr(int ctx) {
  int mmio = g_mmio;
  if (mmio == 0) { return 0; }
  int status = *(mmio + R_STATUS);
  if ((status & 1) == 0) { return 0; }
  *(mmio + R_ACK) = status;
  if (g_dma != 0) {
    *(g_dma + 0) = status;
  }
  if (g_playing && g_cur != 0) {
    *(g_cur + 0) = *(g_cur + 0) + 1;
    g_pos = g_pos + 4;
  }
  return 1;
}

int record_failure(int scratch, int code) {
  if (scratch != 0) { *(scratch + 0) = code; }
  return 1;
}

int initialize(void) {
  int ctx;
  int sync;
  int status;

  ctx = ExAllocatePoolWithTag(0, CTX_SIZE, TAG);
  if (ctx == 0) { return 1; }
  g_ctx = ctx;

  int scratch = ExAllocatePoolWithTag(0, 64, TAG);
  if (scratch == 0) {
    record_failure(scratch, 7);
    ExFreePoolWithTag(ctx, TAG);
    g_ctx = 0;
    return 1;
  }

  // The DMA buffer exists before the ISR can observe the device.
  int dma = ExAllocatePoolWithTag(0, DMA_SIZE, TAG);
  if (dma == 0) {
    ExFreePoolWithTag(scratch, TAG);
    ExFreePoolWithTag(ctx, TAG);
    g_ctx = 0;
    return 1;
  }
  g_dma = dma;

  status = PcNewInterruptSync(&sync, isr, ctx);
  if (status != 0) {
    ExFreePoolWithTag(dma, TAG);
    g_dma = 0;
    ExFreePoolWithTag(scratch, TAG);
    ExFreePoolWithTag(ctx, TAG);
    g_ctx = 0;
    return 1;
  }
  g_sync = sync;

  int mmio;
  status = NdisMMapIoSpace(&mmio, 0);
  if (status != 0) {
    halt();
    ExFreePoolWithTag(scratch, TAG);
    return 1;
  }
  g_mmio = mmio;
  program_src(mmio, 44100);
  set_dac_volume(mmio, 4, 4);
  apply_format(mmio, 2, 16);

  ExFreePoolWithTag(scratch, TAG);
  return 0;
}

int play(int buf, int len) {
  if (g_ctx == 0) { return 1; }
  if (g_mmio == 0) { return 1; }
  if (len < 4) { return 1; }
  if (__ltu(DMA_SIZE, len)) { len = DMA_SIZE; }

  int staging = ExAllocatePoolWithTag(0, DMA_SIZE, TAG);
  if (staging == 0) { return 1; }
  int i;
  for (i = 0; i < len; i = i + 1) {
    __stb(staging + i, __ldb(buf + i));
  }
  // Publish the buffer before announcing playback to the ISR.
  g_cur = staging;
  g_pos = 0;
  g_playing = 1;
  *(g_mmio + R_DAC) = staging;
  *(g_mmio + R_CTRL) = 1;
  return 0;
}
|} ^ common

let memo = ref None
let memo_fixed = ref None

let image () =
  match !memo with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"audiopci" source in
      memo := Some img;
      img

let fixed_image () =
  match !memo_fixed with
  | Some img -> img
  | None ->
      let img =
        Ddt_minicc.Codegen.compile ~name:"audiopci-fixed" fixed_source
      in
      memo_fixed := Some img;
      img

let registry = [ ("SampleRate", 44100) ]

let descriptor =
  { Ddt_kernel.Pci.vendor_id = 0x1274; device_id = 0x5000; revision = 1;
    bar_sizes = [ 0x1000 ]; irq_line = 7 }
