let common = {|
// pro100 -- Intel 8255x-style fast Ethernet miniport (DDK sample alike)
const TAG       = 0x30303145;   // 'E100'
const CTX_SIZE  = 256;
const CTX_MMIO  = 0;
const CTX_LOCK  = 8;            // spinlock object at ctx+8
const CTX_TIMER = 16;
const CTX_RXCNT = 36;
const CTX_TXCNT = 40;
const CTX_PROMISC = 44;

const SCB_STATUS = 0;
const SCB_ACK    = 4;
const SCB_CMD    = 8;
const RX_STATUS  = 12;
const TX_FIFO    = 16;

const OID_SUPPORTED = 1;
const OID_RX_COUNT  = 2;
const OID_TX_COUNT  = 3;
const OID_PROMISC   = 4;

int g_ctx;
int g_timer_ready;
int chars[8];

// Read a 16-bit word from the 8255x serial EEPROM (bit-banged in real
// hardware; register window here), with bounded polling.
int eeprom_read(int ctx, int word_index) {
  int mmio = *(ctx + CTX_MMIO);
  *(mmio + SCB_CMD) = 0x1000 | (word_index & 0xFF);
  int tries;
  for (tries = 0; tries < 2; tries = tries + 1) {
    int v = *(mmio + SCB_STATUS);
    if (v & 0x10) { return v >> 16; }
  }
  return 0xFFFF;
}

// The 8255x EEPROM stores a checksum so that all words sum to 0xBABA.
int eeprom_checksum_ok(int ctx) {
  int sum = 0;
  int i;
  for (i = 0; i < 4; i = i + 1) {
    sum = sum + eeprom_read(ctx, i);
  }
  return (sum & 0xFFFF) == 0xBABA;
}

// CRC-style multicast hash: the high 6 bits select the filter bucket.
int multicast_hash(int mac_ptr) {
  int crc = 0xFFFFFFFF;
  int i;
  for (i = 0; i < 6; i = i + 1) {
    int byte = __ldb(mac_ptr + i);
    crc = crc ^ (byte << 24);
    int bit;
    for (bit = 0; bit < 8; bit = bit + 1) {
      if (crc & 0x80000000) { crc = (crc << 1) ^ 0x04C11DB7; }
      else { crc = crc << 1; }
    }
  }
  return (crc >> 26) & 0x3F;
}

// Port self-test: the device writes a signature into a results buffer.
int self_test(int ctx, int results) {
  int mmio = *(ctx + CTX_MMIO);
  *(results + 0) = 0;
  *(results + 4) = 0xFFFFFFFF;
  *(mmio + SCB_CMD) = results | 1;    // PORT self-test command
  NdisStallExecution(10);
  int sig = *(results + 0);
  int res = *(results + 4);
  if (sig == 0) { return 1; }          // device never responded
  if (res != 0) { return 1; }          // self-test failure bits
  return 0;
}

int link_check(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  int status = *(mmio + SCB_STATUS);
  if (status & 0x100) { *(ctx + CTX_PROMISC) = *(ctx + CTX_PROMISC); }
  return 0;
}

int isr(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  int scb = *(mmio + SCB_STATUS);
  if ((scb & 0xFF00) == 0) { return 0; }
  *(mmio + SCB_ACK) = scb;
  return 3;
}

int query(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (g_ctx == 0) { return 1; }
  if (oid == OID_SUPPORTED) { *buf = 4; return 0; }
  if (oid == OID_RX_COUNT)  { *buf = *(g_ctx + CTX_RXCNT); return 0; }
  if (oid == OID_TX_COUNT)  { *buf = *(g_ctx + CTX_TXCNT); return 0; }
  if (oid == OID_PROMISC)   { *buf = *(g_ctx + CTX_PROMISC); return 0; }
  return 4;
}

int set_information(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (g_ctx == 0) { return 1; }
  if (oid == OID_PROMISC) {
    int v = *buf;
    if (v != 0) { v = 1; }
    NdisAcquireSpinLock(g_ctx + CTX_LOCK);
    *(g_ctx + CTX_PROMISC) = v;
    NdisReleaseSpinLock(g_ctx + CTX_LOCK);
    return 0;
  }
  if (oid == 5) {                     // OID_MULTICAST_ADDR
    if (len < 6) { return 2; }
    int bucket = multicast_hash(buf);
    int mmio = *(g_ctx + CTX_MMIO);
    *(mmio + SCB_CMD) = 0x2000 | bucket;
    return 0;
  }
  return 4;
}

int send(int pkt, int len) {
  if (g_ctx == 0) { return 1; }
  if (len < 14) { return 1; }
  int mmio = *(g_ctx + CTX_MMIO);
  NdisAcquireSpinLock(g_ctx + CTX_LOCK);
  int i;
  for (i = 0; i < len; i = i + 1) {
    __stb(mmio + TX_FIFO, __ldb(pkt + i));
  }
  *(mmio + SCB_CMD) = len;
  *(g_ctx + CTX_TXCNT) = *(g_ctx + CTX_TXCNT) + 1;
  NdisReleaseSpinLock(g_ctx + CTX_LOCK);
  return 0;
}

int initialize(void) {
  int cfg;
  int ctx;
  int mmio;
  int status;

  status = NdisOpenConfiguration(&cfg);
  if (status != 0) { return 1; }
  int promisc = NdisReadConfiguration(cfg, "Promiscuous", 0);
  NdisCloseConfiguration(cfg);

  status = NdisAllocateMemoryWithTag(&ctx, CTX_SIZE, TAG);
  if (status != 0) { return 1; }
  g_ctx = ctx;
  NdisMSetAttributes(ctx);
  if (promisc != 0) { promisc = 1; }
  *(ctx + CTX_PROMISC) = promisc;

  status = NdisMMapIoSpace(&mmio, 0);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  *(ctx + CTX_MMIO) = mmio;

  if (eeprom_checksum_ok(ctx) == 0) {
    NdisWriteErrorLogEntry(0xE1);      // corrupt EEPROM: log and continue
  }
  int st_buf;
  status = NdisAllocateMemoryWithTag(&st_buf, 16, TAG);
  if (status == 0) {
    if (self_test(ctx, st_buf)) { NdisWriteErrorLogEntry(0xE2); }
    NdisFreeMemory(st_buf, 16, 0);
  }

  NdisAllocateSpinLock(ctx + CTX_LOCK);

  status = NdisMRegisterInterrupt(5);
  if (status != 0) {
    NdisFreeSpinLock(ctx + CTX_LOCK);
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }

  NdisMInitializeTimer(ctx + CTX_TIMER, link_check, ctx);
  g_timer_ready = 1;
  NdisMSetTimer(ctx + CTX_TIMER, 3000);
  return 0;
}

int halt(void) {
  if (g_ctx == 0) { return 0; }
  NdisMCancelTimer(g_ctx + CTX_TIMER);
  NdisMDeregisterInterrupt();
  NdisFreeSpinLock(g_ctx + CTX_LOCK);
  NdisFreeMemory(g_ctx, CTX_SIZE, 0);
  g_ctx = 0;
  return 0;
}

// PORT selective reset followed by re-validating the EEPROM, as the DDK
// sample does.
int reset(void) {
  if (g_ctx == 0) { return 1; }
  int mmio = *(g_ctx + CTX_MMIO);
  NdisAcquireSpinLock(g_ctx + CTX_LOCK);
  *(mmio + SCB_CMD) = 2;                  // PORT selective-reset
  NdisStallExecution(20);
  if (eeprom_checksum_ok(g_ctx) == 0) { NdisWriteErrorLogEntry(0xE3); }
  NdisReleaseSpinLock(g_ctx + CTX_LOCK);
  return 0;
}

int driver_entry(void) {
  chars[0] = initialize;
  chars[1] = query;
  chars[2] = set_information;
  chars[3] = send;
  chars[4] = isr;
  chars[5] = handle_interrupt;
  chars[6] = halt;
  chars[7] = reset;
  return NdisMRegisterMiniport(chars);
}
|}

let source = {|
int handle_interrupt(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  NdisDprAcquireSpinLock(ctx + CTX_LOCK);
  int rx = *(mmio + RX_STATUS);
  if (rx & 1) {
    *(ctx + CTX_RXCNT) = *(ctx + CTX_RXCNT) + 1;
    NdisMIndicateReceivePacket(ctx);
  }
  // BUG: the lock was taken with the Dpr variant, but is released with
  // plain NdisReleaseSpinLock -- specifically prohibited from a DPC, as
  // it restores a stale IRQL (kernel hang or panic).
  NdisReleaseSpinLock(ctx + CTX_LOCK);
  return 0;
}
|} ^ common

let fixed_source = {|
int handle_interrupt(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  NdisDprAcquireSpinLock(ctx + CTX_LOCK);
  int rx = *(mmio + RX_STATUS);
  if (rx & 1) {
    *(ctx + CTX_RXCNT) = *(ctx + CTX_RXCNT) + 1;
    NdisMIndicateReceivePacket(ctx);
  }
  NdisDprReleaseSpinLock(ctx + CTX_LOCK);
  return 0;
}
|} ^ common

let memo = ref None
let memo_fixed = ref None

let image () =
  match !memo with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"pro100" source in
      memo := Some img;
      img

let fixed_image () =
  match !memo_fixed with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"pro100-fixed" fixed_source in
      memo_fixed := Some img;
      img

let registry = [ ("Promiscuous", 0) ]

let descriptor =
  { Ddt_kernel.Pci.vendor_id = 0x8086; device_id = 0x1229; revision = 8;
    bar_sizes = [ 0x1000; 0x20 ]; irq_line = 5 }
