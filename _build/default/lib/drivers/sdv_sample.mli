(** Drivers for the §5.1 baseline comparisons against the SDV-style
    static analyzer.

    - {!image}: the "SDV sample driver" — eight seeded API-rule defects
      (double acquire, release-without-acquire, forgotten release,
      wrong-variant release, passive-only call under a spinlock,
      out-of-order release, configuration-handle leak, double free),
      reachable through a symbolic OID sweep.
    - {!fixed_image}: the same driver with every defect repaired.
    - {!synthetic_images}: five one-bug variants for the synthetic-bug
      experiment (deadlock, out-of-order release, extra release, forgotten
      release, kernel call at wrong IRQL). The first three hide the defect
      behind helper-function boundaries, which defeats the intraprocedural
      static baseline but not DDT; the last one also contains a correct
      conditional acquire/release pattern that path-insensitive analysis
      misreports (the baseline's false positive). *)

val image : unit -> Ddt_dvm.Image.t
val fixed_image : unit -> Ddt_dvm.Image.t

val seeded_bug_count : int
(** 8 *)

val synthetic_images : unit -> (string * Ddt_dvm.Image.t) list
(** [(name, image)]: deadlock, out_of_order, extra_release,
    forgotten_release, wrong_irql. *)

val registry : (string * int) list
val descriptor : Ddt_kernel.Pci.descriptor
