lib/drivers/pro1000.mli: Ddt_dvm Ddt_kernel
