lib/drivers/rtl8029.mli: Ddt_dvm Ddt_kernel
