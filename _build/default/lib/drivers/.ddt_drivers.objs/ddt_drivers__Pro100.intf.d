lib/drivers/pro100.mli: Ddt_dvm Ddt_kernel
