lib/drivers/sdv_sample.ml: Ddt_kernel Ddt_minicc Hashtbl Printf
