lib/drivers/pcnet.mli: Ddt_dvm Ddt_kernel
