lib/drivers/pro100.ml: Ddt_kernel Ddt_minicc
