lib/drivers/pro1000.ml: Ddt_kernel Ddt_minicc
