lib/drivers/ac97.mli: Ddt_dvm Ddt_kernel
