lib/drivers/pcnet.ml: Ddt_kernel Ddt_minicc
