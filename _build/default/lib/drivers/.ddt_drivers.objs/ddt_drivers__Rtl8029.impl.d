lib/drivers/rtl8029.ml: Ddt_kernel Ddt_minicc
