lib/drivers/audiopci.ml: Ddt_kernel Ddt_minicc
