lib/drivers/usb_nic.ml: Ddt_minicc
