lib/drivers/corpus.mli: Ddt_checkers Ddt_core Ddt_dvm Ddt_kernel
