lib/drivers/sdv_sample.mli: Ddt_dvm Ddt_kernel
