lib/drivers/audiopci.mli: Ddt_dvm Ddt_kernel
