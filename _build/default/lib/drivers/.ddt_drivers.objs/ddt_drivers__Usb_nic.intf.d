lib/drivers/usb_nic.mli: Ddt_dvm
