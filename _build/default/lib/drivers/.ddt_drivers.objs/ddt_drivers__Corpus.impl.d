lib/drivers/corpus.ml: Ac97 Audiopci Ddt_checkers Ddt_core Ddt_dvm Ddt_kernel List Pcnet Pro100 Pro1000 Rtl8029
