lib/drivers/ac97.ml: Ddt_kernel Ddt_minicc
