(* The driver is Mini-C compiled to a DXE binary; DDT only ever sees the
   binary. The buggy variant carries the five RTL8029 findings of Table 2
   at the same API boundaries as the paper describes them. *)

let common_prologue = {|
// rtl8029 -- NE2000-class PCI Ethernet miniport
const TAG        = 0x32395445;   // 'ET92'
const CTX_SIZE   = 128;
const CTX_MMIO   = 0;            // word offsets inside the context
const CTX_TIMER  = 4;            // timer object lives at ctx+4 (16 bytes)
const CTX_MCAST  = 24;           // 8-entry multicast table (32 bytes)
const CTX_NMCAST = 56;
const CTX_LINK   = 64;
const CTX_IPTX   = 68;
const MCAST_ENTRIES = 8;

const OID_SUPPORTED  = 1;
const OID_LOOKAHEAD  = 2;
const OID_MCAST_LIST = 3;

const REG_ISR_STATUS = 0;
const REG_ISR_ACK    = 4;
const REG_RX_STATUS  = 8;
const REG_LINK       = 12;
const REG_TX_FIFO    = 16;
const REG_TX_LEN     = 20;

int g_ctx;
int g_lookahead;
int g_timer_ready;
int oid_table[8];
int chars[8];
|}

let common_handlers = {|
int link_timer(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  int link = *(mmio + REG_LINK);
  if (link & 1) { *(ctx + CTX_LINK) = 1; }
  else { *(ctx + CTX_LINK) = 0; }
  return 0;
}

int handle_interrupt(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  int status = *(mmio + REG_RX_STATUS);
  if (status & 1) {
    NdisMIndicateReceivePacket(ctx);
  }
  return 0;
}

int send(int pkt, int len) {
  if (g_ctx == 0) { return 1; }
  if (len < 14) { return 1; }
  int mmio = *(g_ctx + CTX_MMIO);
  int ethertype = __ldb(pkt + 12) * 256 + __ldb(pkt + 13);
  if (ethertype == 2048) {
    *(g_ctx + CTX_IPTX) = *(g_ctx + CTX_IPTX) + 1;
  }
  int i;
  for (i = 0; i < len; i = i + 1) {
    __stb(mmio + REG_TX_FIFO, __ldb(pkt + i));
  }
  *(mmio + REG_TX_LEN) = len;
  return 0;
}

int halt(void) {
  if (g_ctx == 0) { return 0; }
  NdisMCancelTimer(g_ctx + CTX_TIMER);
  NdisMDeregisterInterrupt();
  NdisFreeMemory(g_ctx, CTX_SIZE, 0);
  g_ctx = 0;
  return 0;
}

// Soft reset: quiesce, reprogram the chip, re-arm the watchdog. The
// handler must work from any device state, so everything it touches is
// re-checked.
int reset(void) {
  if (g_ctx == 0) { return 1; }
  int mmio = *(g_ctx + CTX_MMIO);
  NdisMCancelTimer(g_ctx + CTX_TIMER);
  *(mmio + REG_ISR_ACK) = 0xFF;        // ack anything pending
  *(mmio + REG_TX_LEN) = 0;
  *(g_ctx + CTX_IPTX) = 0;
  int up = *(mmio + REG_LINK);
  if (up & 1) { *(g_ctx + CTX_LINK) = 1; } else { *(g_ctx + CTX_LINK) = 0; }
  NdisMSetTimer(g_ctx + CTX_TIMER, 1000);
  return 0;
}

int driver_entry(void) {
  chars[0] = initialize;
  chars[1] = query;
  chars[2] = set_information;
  chars[3] = send;
  chars[4] = isr;
  chars[5] = handle_interrupt;
  chars[6] = halt;
  chars[7] = reset;
  return NdisMRegisterMiniport(chars);
}
|}

let source =
  common_prologue
  ^ {|
int isr(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  int status = *(mmio + REG_ISR_STATUS);
  if ((status & 3) == 0) { return 0; }
  *(mmio + REG_ISR_ACK) = status;
  // BUG (race): schedules the watchdog without checking that the timer
  // object was ever initialized -- fatal if the interrupt arrives between
  // NdisMRegisterInterrupt and NdisMInitializeTimer.
  NdisMSetTimer(ctx + CTX_TIMER, 100);
  return 3;
}

int initialize(void) {
  int cfg;
  int ctx;
  int mmio;
  int status;

  status = NdisOpenConfiguration(&cfg);
  if (status != 0) { return 1; }

  int mcast_count = NdisReadConfiguration(cfg, "MaximumMulticastList", 4);
  g_lookahead = NdisReadConfiguration(cfg, "LookAhead", 64);

  status = NdisAllocateMemoryWithTag(&ctx, CTX_SIZE, TAG);
  if (status != 0) {
    // BUG (leak): early exit skips NdisCloseConfiguration.
    return 1;
  }
  g_ctx = ctx;
  NdisMSetAttributes(ctx);

  status = NdisMMapIoSpace(&mmio, 0);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    NdisCloseConfiguration(cfg);
    g_ctx = 0;
    return 1;
  }
  *(ctx + CTX_MMIO) = mmio;

  // BUG (memory corruption): the registry value indexes a fixed-size
  // table without any range check.
  int mcast = ctx + CTX_MCAST;
  mcast[mcast_count] = 0;
  *(ctx + CTX_NMCAST) = mcast_count;

  status = NdisMRegisterInterrupt(9);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    NdisCloseConfiguration(cfg);
    g_ctx = 0;
    return 1;
  }

  // BUG window: the ISR is live but the timer object is still garbage.
  NdisMInitializeTimer(ctx + CTX_TIMER, link_timer, ctx);
  g_timer_ready = 1;
  NdisMSetTimer(ctx + CTX_TIMER, 1000);

  NdisCloseConfiguration(cfg);
  return 0;
}

int query(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (oid == OID_SUPPORTED)  { *buf = 3; return 0; }
  if (oid == OID_LOOKAHEAD)  { *buf = g_lookahead; return 0; }
  // BUG (segfault): unexpected OIDs index a handler table that was never
  // filled in; the null "handler" is then dereferenced.
  int handler = oid_table[oid & 7];
  *handler = oid;
  return 0;
}

int set_information(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (oid == OID_LOOKAHEAD) { g_lookahead = *buf; return 0; }
  if (oid == OID_MCAST_LIST) {
    if (g_ctx != 0) { *(g_ctx + CTX_NMCAST) = *buf; }
    return 0;
  }
  // BUG (segfault): same unchecked dispatch on the set path.
  int handler = oid_table[(oid >> 2) & 7];
  *handler = *buf;
  return 0;
}
|}
  ^ common_handlers

let fixed_source =
  common_prologue
  ^ {|
int isr(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  int status = *(mmio + REG_ISR_STATUS);
  if ((status & 3) == 0) { return 0; }
  *(mmio + REG_ISR_ACK) = status;
  if (g_timer_ready) {
    NdisMSetTimer(ctx + CTX_TIMER, 100);
  }
  return 3;
}

int initialize(void) {
  int cfg;
  int ctx;
  int mmio;
  int status;

  status = NdisOpenConfiguration(&cfg);
  if (status != 0) { return 1; }

  int mcast_count = NdisReadConfiguration(cfg, "MaximumMulticastList", 4);
  g_lookahead = NdisReadConfiguration(cfg, "LookAhead", 64);

  status = NdisAllocateMemoryWithTag(&ctx, CTX_SIZE, TAG);
  if (status != 0) {
    NdisCloseConfiguration(cfg);
    return 1;
  }
  g_ctx = ctx;
  NdisMSetAttributes(ctx);

  status = NdisMMapIoSpace(&mmio, 0);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    NdisCloseConfiguration(cfg);
    g_ctx = 0;
    return 1;
  }
  *(ctx + CTX_MMIO) = mmio;

  if (__ltu(MCAST_ENTRIES - 1, mcast_count)) {
    mcast_count = MCAST_ENTRIES - 1;
  }
  int mcast = ctx + CTX_MCAST;
  mcast[mcast_count] = 0;
  *(ctx + CTX_NMCAST) = mcast_count;

  status = NdisMRegisterInterrupt(9);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    NdisCloseConfiguration(cfg);
    g_ctx = 0;
    return 1;
  }

  NdisMInitializeTimer(ctx + CTX_TIMER, link_timer, ctx);
  g_timer_ready = 1;
  NdisMSetTimer(ctx + CTX_TIMER, 1000);

  NdisCloseConfiguration(cfg);
  return 0;
}

int query(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (oid == OID_SUPPORTED)  { *buf = 3; return 0; }
  if (oid == OID_LOOKAHEAD)  { *buf = g_lookahead; return 0; }
  return 4;   // NOT_SUPPORTED
}

int set_information(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (oid == OID_LOOKAHEAD) { g_lookahead = *buf; return 0; }
  if (oid == OID_MCAST_LIST) {
    if (g_ctx != 0) { *(g_ctx + CTX_NMCAST) = *buf; }
    return 0;
  }
  return 4;
}
|}
  ^ common_handlers

let memo = ref None
let memo_fixed = ref None

let image () =
  match !memo with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"rtl8029" source in
      memo := Some img;
      img

let fixed_image () =
  match !memo_fixed with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"rtl8029-fixed" fixed_source in
      memo_fixed := Some img;
      img

let registry = [ ("MaximumMulticastList", 4); ("LookAhead", 64) ]

let descriptor =
  { Ddt_kernel.Pci.vendor_id = 0x10EC; device_id = 0x8029; revision = 0;
    bar_sizes = [ 0x1000 ]; irq_line = 9 }
