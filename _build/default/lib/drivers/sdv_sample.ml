(* A miniport whose OID dispatch fans out to functions carrying classic
   API-rule defects — the shape of the sample drivers shipped with static
   driver verifiers. *)

let seeded_bug_count = 8

let harness ~query_body ~init_extra ~extra_functions = Printf.sprintf {|
// sdv_sample -- API-rule exercise miniport
const TAG      = 0x53445630;
const CTX_SIZE = 128;
const CTX_LOCK1 = 8;
const CTX_LOCK2 = 24;
const CTX_DATA  = 48;

int g_ctx;
int chars[8];

%s

int isr(int ctx) {
  return 0;
}

int send(int pkt, int len) {
  if (len < 14) { return 1; }
  return 0;
}

int set_information(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  return 4;
}

int query(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (g_ctx == 0) { return 1; }
%s
  return 4;
}

int initialize(void) {
  int ctx;
  int status;
  status = NdisAllocateMemoryWithTag(&ctx, CTX_SIZE, TAG);
  if (status != 0) { return 1; }
  g_ctx = ctx;
  NdisMSetAttributes(ctx);
  NdisAllocateSpinLock(ctx + CTX_LOCK1);
  NdisAllocateSpinLock(ctx + CTX_LOCK2);
%s
  return 0;
}

int halt(void) {
  if (g_ctx == 0) { return 0; }
  NdisFreeSpinLock(g_ctx + CTX_LOCK1);
  NdisFreeSpinLock(g_ctx + CTX_LOCK2);
  NdisFreeMemory(g_ctx, CTX_SIZE, 0);
  g_ctx = 0;
  return 0;
}

int driver_entry(void) {
  chars[0] = initialize;
  chars[1] = query;
  chars[2] = set_information;
  chars[3] = send;
  chars[4] = isr;
  chars[5] = 0;
  chars[6] = halt;
  chars[7] = 0;
  return NdisMRegisterMiniport(chars);
}
|} extra_functions query_body init_extra

(* --- the 8-bug sample driver ------------------------------------------- *)

let buggy_functions = {|
// bug 1: double acquire of the same lock (deadlock)
int do_double_acquire(int ctx) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  return 0;
}

// bug 2: one acquire, two releases (locally evident imbalance)
int do_extra_release(int ctx) {
  NdisAcquireSpinLock(ctx + CTX_LOCK2);
  *(ctx + CTX_DATA) = 9;
  NdisReleaseSpinLock(ctx + CTX_LOCK2);
  NdisReleaseSpinLock(ctx + CTX_LOCK2);
  return 0;
}

// bug 3: lock still held when the function (and entry point) returns
int do_forgotten_release(int ctx, int flag) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  if (flag == 0) {
    return 1;   // early exit leaks the lock
  }
  *(ctx + CTX_DATA) = flag;
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  return 0;
}

// bug 4: acquired plain, released with the Dpr variant
int do_wrong_variant(int ctx) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  *(ctx + CTX_DATA) = 1;
  NdisDprReleaseSpinLock(ctx + CTX_LOCK1);
  return 0;
}

// bug 5: passive-only API invoked while holding a spinlock (DISPATCH)
int do_wrong_irql(int ctx) {
  int cfg;
  NdisOpenConfiguration(&cfg);
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  int v = NdisReadConfiguration(cfg, "Depth", 4);
  *(ctx + CTX_DATA) = v;
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  NdisCloseConfiguration(cfg);
  return 0;
}

// bug 6: locks released out of acquisition order
int do_out_of_order(int ctx) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  NdisAcquireSpinLock(ctx + CTX_LOCK2);
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  NdisReleaseSpinLock(ctx + CTX_LOCK2);
  return 0;
}

// bug 7: configuration handle leaked on the failure path
int do_config_leak(int ctx) {
  int cfg;
  int tmp;
  int status;
  NdisOpenConfiguration(&cfg);
  status = NdisAllocateMemoryWithTag(&tmp, 32, TAG);
  if (status != 0) {
    return 1;   // cfg handle leaks
  }
  NdisFreeMemory(tmp, 32, 0);
  NdisCloseConfiguration(cfg);
  return 0;
}

// bug 8: double free
int do_double_free(int ctx) {
  int tmp;
  int status = NdisAllocateMemoryWithTag(&tmp, 32, TAG);
  if (status != 0) { return 1; }
  NdisFreeMemory(tmp, 32, 0);
  NdisFreeMemory(tmp, 32, 0);
  return 0;
}
|}

let buggy_query = {|
  if (oid == 10) { return do_double_acquire(g_ctx); }
  if (oid == 11) { return do_extra_release(g_ctx); }
  if (oid == 12) { return do_forgotten_release(g_ctx, *buf); }
  if (oid == 13) { return do_wrong_variant(g_ctx); }
  if (oid == 14) { return do_wrong_irql(g_ctx); }
  if (oid == 15) { return do_out_of_order(g_ctx); }
  if (oid == 16) { return do_config_leak(g_ctx); }
  if (oid == 17) { return do_double_free(g_ctx); }
|}

let fixed_functions = {|
int do_double_acquire(int ctx) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  *(ctx + CTX_DATA) = 2;
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  return 0;
}

int do_extra_release(int ctx) {
  NdisAcquireSpinLock(ctx + CTX_LOCK2);
  NdisReleaseSpinLock(ctx + CTX_LOCK2);
  return 0;
}

int do_forgotten_release(int ctx, int flag) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  if (flag == 0) {
    NdisReleaseSpinLock(ctx + CTX_LOCK1);
    return 1;
  }
  *(ctx + CTX_DATA) = flag;
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  return 0;
}

int do_wrong_variant(int ctx) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  *(ctx + CTX_DATA) = 1;
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  return 0;
}

int do_wrong_irql(int ctx) {
  int cfg;
  NdisOpenConfiguration(&cfg);
  int v = NdisReadConfiguration(cfg, "Depth", 4);
  NdisCloseConfiguration(cfg);
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  *(ctx + CTX_DATA) = v;
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  return 0;
}

int do_out_of_order(int ctx) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  NdisAcquireSpinLock(ctx + CTX_LOCK2);
  NdisReleaseSpinLock(ctx + CTX_LOCK2);
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  return 0;
}

int do_config_leak(int ctx) {
  int cfg;
  int tmp;
  int status;
  NdisOpenConfiguration(&cfg);
  status = NdisAllocateMemoryWithTag(&tmp, 32, TAG);
  if (status != 0) {
    NdisCloseConfiguration(cfg);
    return 1;
  }
  NdisFreeMemory(tmp, 32, 0);
  NdisCloseConfiguration(cfg);
  return 0;
}

int do_double_free(int ctx) {
  int tmp;
  int status = NdisAllocateMemoryWithTag(&tmp, 32, TAG);
  if (status != 0) { return 1; }
  NdisFreeMemory(tmp, 32, 0);
  return 0;
}
|}

let source = harness ~query_body:buggy_query ~init_extra:"" ~extra_functions:buggy_functions
let fixed_source =
  harness ~query_body:buggy_query ~init_extra:"" ~extra_functions:fixed_functions

(* --- the five synthetic one-bug variants -------------------------------- *)

(* Defects 1-3 hide behind helper calls: an intraprocedural static
   analysis sees balanced (or unknowable) lock usage per function. *)

let synthetic_deadlock = harness
    ~query_body:{|
  if (oid == 10) { return outer(g_ctx); }
|}
    ~init_extra:""
    ~extra_functions:{|
int lock_it(int ctx) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  return 0;
}
int unlock_it(int ctx) {
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  return 0;
}
int inner(int ctx) {
  lock_it(ctx);            // second acquire: deadlock
  *(ctx + CTX_DATA) = 1;
  unlock_it(ctx);
  return 0;
}
int outer(int ctx) {
  lock_it(ctx);
  inner(ctx);
  unlock_it(ctx);
  return 0;
}
|}

let synthetic_out_of_order = harness
    ~query_body:{|
  if (oid == 10) { return outer(g_ctx); }
|}
    ~init_extra:""
    ~extra_functions:{|
int take_both(int ctx) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  NdisAcquireSpinLock(ctx + CTX_LOCK2);
  return 0;
}
int drop_first_then_second(int ctx) {
  NdisReleaseSpinLock(ctx + CTX_LOCK1);   // out of order: lock2 is newer
  NdisReleaseSpinLock(ctx + CTX_LOCK2);
  return 0;
}
int outer(int ctx) {
  take_both(ctx);
  *(ctx + CTX_DATA) = 1;
  drop_first_then_second(ctx);
  return 0;
}
|}

let synthetic_extra_release = harness
    ~query_body:{|
  if (oid == 10) { return outer(g_ctx); }
|}
    ~init_extra:""
    ~extra_functions:{|
int cleanup(int ctx) {
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  return 0;
}
int outer(int ctx) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  *(ctx + CTX_DATA) = 1;
  cleanup(ctx);
  cleanup(ctx);    // releases a lock that is no longer held
  return 0;
}
|}

let synthetic_forgotten_release = harness
    ~query_body:{|
  if (oid == 10) { return hold_forever(g_ctx, *buf); }
|}
    ~init_extra:""
    ~extra_functions:{|
int hold_forever(int ctx, int flag) {
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  *(ctx + CTX_DATA) = flag;
  if (flag == 0) {
    return 1;    // lock leaks on this path (intraprocedurally visible)
  }
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  return 0;
}
|}

let synthetic_wrong_irql = harness
    ~query_body:{|
  if (oid == 10) { return raised_config(g_ctx); }
  if (oid == 11) { return correct_conditional(g_ctx, *buf); }
|}
    ~init_extra:""
    ~extra_functions:{|
int raised_config(int ctx) {
  int cfg;
  NdisOpenConfiguration(&cfg);
  NdisAcquireSpinLock(ctx + CTX_LOCK1);
  // passive-only API at DISPATCH_LEVEL (intraprocedurally visible)
  int v = NdisReadConfiguration(cfg, "Depth", 4);
  *(ctx + CTX_DATA) = v;
  NdisReleaseSpinLock(ctx + CTX_LOCK1);
  NdisCloseConfiguration(cfg);
  return 0;
}

// CORRECT code that a path-insensitive analysis misjudges: the acquire
// and the release are guarded by the same condition, so every real path
// is balanced -- but merging the branches makes the lock state "maybe
// held" at exit (the static baseline's false positive).
int correct_conditional(int ctx, int flag) {
  if (flag != 0) {
    NdisAcquireSpinLock(ctx + CTX_LOCK1);
  }
  *(ctx + CTX_DATA) = flag;
  if (flag != 0) {
    NdisReleaseSpinLock(ctx + CTX_LOCK1);
  }
  return 0;
}
|}

(* --- compilation --------------------------------------------------------- *)

let compile_memo = Hashtbl.create 8

let compile name src =
  match Hashtbl.find_opt compile_memo name with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name src in
      Hashtbl.add compile_memo name img;
      img

let image () = compile "sdv_sample" source
let fixed_image () = compile "sdv_sample-fixed" fixed_source

let synthetic_images () =
  [ ("deadlock", compile "synthetic-deadlock" synthetic_deadlock);
    ("out_of_order", compile "synthetic-out-of-order" synthetic_out_of_order);
    ("extra_release", compile "synthetic-extra-release" synthetic_extra_release);
    ("forgotten_release",
     compile "synthetic-forgotten-release" synthetic_forgotten_release);
    ("wrong_irql", compile "synthetic-wrong-irql" synthetic_wrong_irql) ]

let registry = []

let descriptor =
  { Ddt_kernel.Pci.vendor_id = 0x1414; device_id = 0x0001; revision = 1;
    bar_sizes = [ 0x1000 ]; irq_line = 12 }
