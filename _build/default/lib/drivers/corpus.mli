(** The evaluation corpus: the six drivers of Table 1, each in a buggy
    (as-shipped) and a fixed variant, with their device descriptors,
    registry contents and ready-made DDT configurations. *)

type entry = {
  name : string;                       (** Table 1 display name *)
  short : string;
  driver_class : Ddt_core.Config.driver_class;
  image : unit -> Ddt_dvm.Image.t;
  fixed_image : unit -> Ddt_dvm.Image.t;
  registry : (string * int) list;
  descriptor : Ddt_kernel.Pci.descriptor;
  expected_bugs : (Ddt_checkers.Report.kind * string) list;
  (** Table 2 rows for this driver: kind and a short description. *)
}

val all : entry list
(** In Table 1 order (largest binary first). *)

val find : string -> entry
(** By [short] name. @raise Not_found *)

val config :
  ?fixed:bool -> ?use_annotations:bool -> entry -> Ddt_core.Config.t
(** A ready-to-run DDT configuration for one corpus entry. *)
