(** The Intel Pro/100 (DDK sample) NIC driver. Carries its Table 2 bug:
    the deferred procedure call (DPC) routine releases a spinlock it
    acquired with [NdisDprAcquireSpinLock] using plain
    [NdisReleaseSpinLock] — prohibited by the API contract because it
    restores a stale IRQL and can hang or crash the kernel. *)

val source : string
val fixed_source : string
val image : unit -> Ddt_dvm.Image.t
val fixed_image : unit -> Ddt_dvm.Image.t
val registry : (string * int) list
val descriptor : Ddt_kernel.Pci.descriptor
