(** The AMD PCNet-alike NIC driver, carrying its two Table 2 bugs:

    + memory allocated with [NdisAllocateMemoryWithTag] (the receive ring)
      is never freed, not even by Halt;
    + packets and buffers (and their pools) are not freed when a later
      step of initialization fails.

    The fixed variant releases everything on both paths. *)

val source : string
val fixed_source : string
val image : unit -> Ddt_dvm.Image.t
val fixed_image : unit -> Ddt_dvm.Image.t
val registry : (string * int) list
val descriptor : Ddt_kernel.Pci.descriptor
