(** The Intel 82801AA AC'97-alike audio driver. Carries its single
    Table 2 bug: during playback, the interrupt handler dereferences a
    position pointer that the Play path publishes only after starting the
    stream — an interrupt in that window causes a BSOD. *)

val source : string
val fixed_source : string
val image : unit -> Ddt_dvm.Image.t
val fixed_image : unit -> Ddt_dvm.Image.t
val registry : (string * int) list
val descriptor : Ddt_kernel.Pci.descriptor
