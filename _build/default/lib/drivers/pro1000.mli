(** The Intel Pro/1000-alike gigabit NIC driver — the largest binary of
    Table 1 (EEPROM access, PHY/MDIO management, descriptor rings, a wide
    OID surface). Carries its single Table 2 bug: a memory leak on a
    failed initialization path (the context block is forgotten when the
    receive ring allocation fails). *)

val source : string
val fixed_source : string
val image : unit -> Ddt_dvm.Image.t
val fixed_image : unit -> Ddt_dvm.Image.t
val registry : (string * int) list
val descriptor : Ddt_kernel.Pci.descriptor
