(** The Ensoniq AudioPCI-alike sound-card driver (portcls/WDM class),
    carrying its four Table 2 bugs:

    + crash when [ExAllocatePoolWithTag] returns NULL: the driver checks
      the result, but a later error-handling path uses the null pointer
      anyway;
    + crash when [PcNewInterruptSync] fails: the error path dereferences
      the (null) sync object;
    + race condition in the initialization routine: the ISR is live
      before the DMA buffer it touches unconditionally is set up;
    + race conditions with interrupts while playing audio: playback state
      is published to the ISR before the current-buffer pointer is set. *)

val source : string
val fixed_source : string
val image : unit -> Ddt_dvm.Image.t
val fixed_image : unit -> Ddt_dvm.Image.t
val registry : (string * int) list
val descriptor : Ddt_kernel.Pci.descriptor
