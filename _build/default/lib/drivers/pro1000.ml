let common = {|
// pro1000 -- Intel 8254x-style gigabit Ethernet miniport
const TAG        = 0x45314B47;   // 'G1KE'
const CTX_SIZE   = 512;
const CTX_MMIO   = 0;
const CTX_TXRING = 4;
const CTX_RXRING = 8;
const CTX_TIMER  = 12;           // 16-byte timer object
const CTX_MAC0   = 32;           // 6-byte MAC address
const CTX_SPEED  = 40;
const CTX_DUPLEX = 44;
const CTX_MTU    = 48;
const CTX_RXCNT  = 52;
const CTX_TXCNT  = 56;
const CTX_ERRCNT = 60;
const CTX_FLAGS  = 64;
const CTX_PHYID  = 68;
const TX_RING_BYTES = 512;
const RX_RING_BYTES = 512;

// device registers
const R_CTRL   = 0;
const R_STATUS = 4;
const R_ICR    = 8;     // interrupt cause, read clears
const R_IMS    = 12;
const R_EERD   = 16;    // eeprom read port
const R_MDIC   = 20;    // phy access port
const R_RDT    = 24;
const R_TDT    = 28;
const R_TXD    = 32;    // tx data window
const R_RXSTAT = 36;

const OID_SUPPORTED   = 1;
const OID_MAC_ADDRESS = 2;
const OID_LINK_SPEED  = 3;
const OID_MTU         = 4;
const OID_RX_COUNT    = 5;
const OID_TX_COUNT    = 6;
const OID_ERR_COUNT   = 7;
const OID_DUPLEX      = 8;

int g_ctx;
int g_timer_ready;
int chars[8];

// Read one 16-bit word from the EEPROM through the EERD register; the
// done bit may never come up on broken hardware, so bound the polling.
int eeprom_read(int mmio, int word_index) {
  *(mmio + R_EERD) = (word_index << 8) | 1;
  int tries;
  for (tries = 0; tries < 2; tries = tries + 1) {
    int v = *(mmio + R_EERD);
    if (v & 2) {                 // done bit
      return (v >> 16) & 0xFFFF;
    }
  }
  return 0xFFFF;                 // timed out: float high like real eeproms
}

int mdio_read(int mmio, int phy, int reg) {
  *(mmio + R_MDIC) = (phy << 21) | (reg << 16) | (1 << 27);
  int tries;
  for (tries = 0; tries < 2; tries = tries + 1) {
    int v = *(mmio + R_MDIC);
    if (v & (1 << 28)) {
      return v & 0xFFFF;
    }
  }
  return 0xFFFF;
}

int mdio_write(int mmio, int phy, int reg, int value) {
  *(mmio + R_MDIC) = (phy << 21) | (reg << 16) | (2 << 26) | (value & 0xFFFF);
  return 0;
}

// Internet checksum over a byte buffer, for TX offload emulation.
int checksum16(int buf, int len) {
  int sum = 0;
  int i = 0;
  while (i + 1 < len) {
    sum = sum + (__ldb(buf + i) << 8) + __ldb(buf + i + 1);
    i = i + 2;
  }
  if (i < len) { sum = sum + (__ldb(buf + i) << 8); }
  // branch-free carry fold: two rounds always suffice for <= 64K bytes
  sum = (sum & 0xFFFF) + (sum >> 16);
  sum = (sum & 0xFFFF) + (sum >> 16);
  return (~sum) & 0xFFFF;
}

int read_mac_from_eeprom(int ctx, int mmio) {
  int w0 = eeprom_read(mmio, 0);
  int w1 = eeprom_read(mmio, 1);
  int w2 = eeprom_read(mmio, 2);
  __stb(ctx + CTX_MAC0 + 0, w0 & 0xFF);
  __stb(ctx + CTX_MAC0 + 1, (w0 >> 8) & 0xFF);
  __stb(ctx + CTX_MAC0 + 2, w1 & 0xFF);
  __stb(ctx + CTX_MAC0 + 3, (w1 >> 8) & 0xFF);
  __stb(ctx + CTX_MAC0 + 4, w2 & 0xFF);
  __stb(ctx + CTX_MAC0 + 5, (w2 >> 8) & 0xFF);
  return 0;
}

int setup_ring(int ring, int bytes) {
  NdisZeroMemory(ring, bytes);
  // descriptor 0 marked owned-by-hardware
  *(ring + 0) = 0x80000000;
  return 0;
}

int negotiate_link(int ctx, int mmio) {
  int bmsr = mdio_read(mmio, *(ctx + CTX_PHYID), 1);
  if (bmsr & 4) {                 // link up
    int speed_bits = mdio_read(mmio, *(ctx + CTX_PHYID), 17);
    if (speed_bits & 0x8000)      { *(ctx + CTX_SPEED) = 1000; }
    else { if (speed_bits & 0x4000) { *(ctx + CTX_SPEED) = 100; }
           else                      { *(ctx + CTX_SPEED) = 10; } }
    if (speed_bits & 0x2000) { *(ctx + CTX_DUPLEX) = 1; }
    else                     { *(ctx + CTX_DUPLEX) = 0; }
    return 1;
  }
  *(ctx + CTX_SPEED) = 0;
  return 0;
}

int watchdog(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  negotiate_link(ctx, mmio);
  return 0;
}

int isr(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  int icr = *(mmio + R_ICR);
  if (icr == 0) { return 0; }
  if (icr & 0x84) { return 3; }   // rx or link change: queue the dpc
  return 1;
}

int handle_interrupt(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  int rxstat = *(mmio + R_RXSTAT);
  if (rxstat & 1) {
    *(ctx + CTX_RXCNT) = *(ctx + CTX_RXCNT) + 1;
    NdisMIndicateReceivePacket(ctx);
  }
  if (rxstat & 2) {
    *(ctx + CTX_ERRCNT) = *(ctx + CTX_ERRCNT) + 1;
  }
  return 0;
}

int query(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (g_ctx == 0) { return 1; }
  if (oid == OID_SUPPORTED)   { *buf = 8; return 0; }
  if (oid == OID_MAC_ADDRESS) {
    if (len < 8) { return 2; }
    *buf = *(g_ctx + CTX_MAC0);
    *(buf + 4) = *(g_ctx + CTX_MAC0 + 4) & 0xFFFF;
    return 0;
  }
  if (oid == OID_LINK_SPEED) { *buf = *(g_ctx + CTX_SPEED); return 0; }
  if (oid == OID_MTU)        { *buf = *(g_ctx + CTX_MTU); return 0; }
  if (oid == OID_RX_COUNT)   { *buf = *(g_ctx + CTX_RXCNT); return 0; }
  if (oid == OID_TX_COUNT)   { *buf = *(g_ctx + CTX_TXCNT); return 0; }
  if (oid == OID_ERR_COUNT)  { *buf = *(g_ctx + CTX_ERRCNT); return 0; }
  if (oid == OID_DUPLEX)     { *buf = *(g_ctx + CTX_DUPLEX); return 0; }
  return 4;
}

int set_information(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (g_ctx == 0) { return 1; }
  if (oid == OID_MTU) {
    int mtu = *buf;
    if (__ltu(9014, mtu)) { return 2; }
    if (__ltu(mtu, 68))   { return 2; }
    *(g_ctx + CTX_MTU) = mtu;
    return 0;
  }
  if (oid == OID_RX_COUNT) { *(g_ctx + CTX_RXCNT) = 0; return 0; }
  if (oid == OID_TX_COUNT) { *(g_ctx + CTX_TXCNT) = 0; return 0; }
  return 4;
}

int send(int pkt, int len) {
  if (g_ctx == 0) { return 1; }
  if (len < 14) { return 1; }
  if (__ltu(*(g_ctx + CTX_MTU) + 14, len)) { return 1; }
  int mmio = *(g_ctx + CTX_MMIO);
  int csum = checksum16(pkt, len);
  int i;
  for (i = 0; i < len; i = i + 1) {
    __stb(mmio + R_TXD, __ldb(pkt + i));
  }
  *(mmio + R_TDT) = (len << 16) | csum;
  *(g_ctx + CTX_TXCNT) = *(g_ctx + CTX_TXCNT) + 1;
  return 0;
}

// Full MAC reset: device control reset bit, rebuild the rings, renegotiate.
int reset(void) {
  if (g_ctx == 0) { return 1; }
  int mmio = *(g_ctx + CTX_MMIO);
  *(mmio + R_CTRL) = 0x04000000;
  NdisStallExecution(10);
  setup_ring(*(g_ctx + CTX_TXRING), TX_RING_BYTES);
  setup_ring(*(g_ctx + CTX_RXRING), RX_RING_BYTES);
  *(g_ctx + CTX_RXCNT) = 0;
  *(g_ctx + CTX_TXCNT) = 0;
  *(g_ctx + CTX_ERRCNT) = 0;
  negotiate_link(g_ctx, mmio);
  *(mmio + R_IMS) = 0x84;
  return 0;
}

int driver_entry(void) {
  chars[0] = initialize;
  chars[1] = query;
  chars[2] = set_information;
  chars[3] = send;
  chars[4] = isr;
  chars[5] = handle_interrupt;
  chars[6] = halt;
  chars[7] = reset;
  return NdisMRegisterMiniport(chars);
}
|}

let init_body ~buggy =
  let rx_fail_path =
    if buggy then
      {|
  status = NdisAllocateMemoryWithTag(&rxring, RX_RING_BYTES, TAG);
  if (status != 0) {
    // BUG (leak): the tx ring is released but the context block is
    // forgotten on this failure path.
    NdisFreeMemory(txring, TX_RING_BYTES, 0);
    g_ctx = 0;
    return 1;
  }
|}
    else
      {|
  status = NdisAllocateMemoryWithTag(&rxring, RX_RING_BYTES, TAG);
  if (status != 0) {
    NdisFreeMemory(txring, TX_RING_BYTES, 0);
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
|}
  in
  {|
int initialize(void) {
  int cfg;
  int ctx;
  int mmio;
  int txring;
  int rxring;
  int status;

  status = NdisOpenConfiguration(&cfg);
  if (status != 0) { return 1; }
  int mtu = NdisReadConfiguration(cfg, "JumboMtu", 1500);
  int phyid = NdisReadConfiguration(cfg, "PhyAddress", 1);
  NdisCloseConfiguration(cfg);
  if (__ltu(9014, mtu)) { mtu = 1500; }
  if (__ltu(31, phyid)) { phyid = 1; }

  status = NdisAllocateMemoryWithTag(&ctx, CTX_SIZE, TAG);
  if (status != 0) { return 1; }
  g_ctx = ctx;
  NdisMSetAttributes(ctx);
  *(ctx + CTX_MTU) = mtu;
  *(ctx + CTX_PHYID) = phyid;

  status = NdisMMapIoSpace(&mmio, 0);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  *(ctx + CTX_MMIO) = mmio;

  // reset the mac and wait for it to settle
  *(mmio + R_CTRL) = 0x04000000;
  NdisStallExecution(10);
  read_mac_from_eeprom(ctx, mmio);

  status = NdisAllocateMemoryWithTag(&txring, TX_RING_BYTES, TAG);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  *(ctx + CTX_TXRING) = txring;
  setup_ring(txring, TX_RING_BYTES);
|}
  ^ rx_fail_path
  ^ {|
  *(ctx + CTX_RXRING) = rxring;
  setup_ring(rxring, RX_RING_BYTES);

  status = NdisMRegisterInterrupt(11);
  if (status != 0) {
    NdisFreeMemory(rxring, RX_RING_BYTES, 0);
    NdisFreeMemory(txring, TX_RING_BYTES, 0);
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }

  NdisMInitializeTimer(ctx + CTX_TIMER, watchdog, ctx);
  g_timer_ready = 1;
  NdisMSetTimer(ctx + CTX_TIMER, 2000);

  negotiate_link(ctx, mmio);
  *(mmio + R_IMS) = 0x84;       // unmask rx + link interrupts
  return 0;
}

int halt(void) {
  if (g_ctx == 0) { return 0; }
  NdisMCancelTimer(g_ctx + CTX_TIMER);
  NdisMDeregisterInterrupt();
  NdisFreeMemory(*(g_ctx + CTX_RXRING), RX_RING_BYTES, 0);
  NdisFreeMemory(*(g_ctx + CTX_TXRING), TX_RING_BYTES, 0);
  NdisFreeMemory(g_ctx, CTX_SIZE, 0);
  g_ctx = 0;
  return 0;
}
|}

let source = init_body ~buggy:true ^ common
let fixed_source = init_body ~buggy:false ^ common

let memo = ref None
let memo_fixed = ref None

let image () =
  match !memo with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"pro1000" source in
      memo := Some img;
      img

let fixed_image () =
  match !memo_fixed with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"pro1000-fixed" fixed_source in
      memo_fixed := Some img;
      img

let registry = [ ("JumboMtu", 1500); ("PhyAddress", 1) ]

let descriptor =
  { Ddt_kernel.Pci.vendor_id = 0x8086; device_id = 0x100E; revision = 2;
    bar_sizes = [ 0x4000 ]; irq_line = 11 }
