let common = {|
// ac97 -- Intel 82801AA (ICH) AC'97 controller miniport
const TAG       = 0x37394341;   // 'AC97'
const CTX_SIZE  = 256;
const BDL_SIZE  = 128;          // buffer descriptor list

const R_GLOB_STA = 0;
const R_GLOB_ACK = 4;
const R_PO_CIV   = 8;           // current index value
const R_PO_LVI   = 12;          // last valid index
const R_PO_CR    = 16;          // control
const R_CODEC    = 20;          // codec register window

const MIX_MASTER = 2;
const MIX_PCM    = 24;

int g_ctx;
int g_mmio;
int g_bdl;        // buffer descriptor list
int g_playing;
int g_pos_ptr;    // where the ISR records the playback position
int g_sync;
int g_volume;
int chars[6];

// Codec register access through the semaphore'd window; polling bounded
// like real drivers do.
int codec_read(int mmio, int reg) {
  *(mmio + R_CODEC) = (reg << 16) | (1 << 31);
  int tries;
  for (tries = 0; tries < 4; tries = tries + 1) {
    int v = *(mmio + R_CODEC);
    if ((v & (1 << 31)) == 0) {
      return v & 0xFFFF;
    }
  }
  return 0xFFFF;
}

int codec_write(int mmio, int reg, int value) {
  *(mmio + R_CODEC) = (reg << 16) | (value & 0xFFFF);
  return 0;
}

// Attenuation mapping: the AC'97 master register wants 1.5 dB steps,
// 0x00 = loudest, 0x3F = mute. Convert a 0..100 UI volume.
int volume_to_attenuation(int percent) {
  if (__ltu(100, percent)) { percent = 100; }
  int inv = 100 - percent;
  int att = (inv * 63) / 100;
  return att & 0x3F;
}

int set_master_volume(int mmio, int percent) {
  int att = volume_to_attenuation(percent);
  codec_write(mmio, MIX_MASTER, (att << 8) | att);
  return 0;
}

// Choose the DAC rate divisor for a requested sample rate; the part
// supports the standard set only, so snap to the closest one.
int snap_rate(int hz) {
  if (__ltu(hz, 11025)) { return 8000; }
  if (__ltu(hz, 22050)) { return 11025; }
  if (__ltu(hz, 32000)) { return 22050; }
  if (__ltu(hz, 44100)) { return 32000; }
  if (__ltu(hz, 48000)) { return 44100; }
  return 48000;
}

int program_dac_rate(int mmio, int hz) {
  int rate = snap_rate(hz);
  codec_write(mmio, 44, rate & 0xFFFF);   // PCM front DAC rate register
  return rate;
}

// Bring the codec out of reset and to a known mixer state.
int codec_init(int mmio) {
  codec_write(mmio, 0, 0);                // reset
  int tries;
  for (tries = 0; tries < 2; tries = tries + 1) {
    int ready = *(mmio + R_GLOB_STA);
    if (ready & 0x100) {                  // primary codec ready
      set_master_volume(mmio, 75);
      codec_write(mmio, MIX_PCM, 0x0808);
      program_dac_rate(mmio, 44100);
      return 0;
    }
  }
  return 1;
}

// Square-wave beep, used by the diagnostics entry points.
int write_beep(int dst, int len, int period) {
  if (period < 2) { period = 2; }
  int i;
  int level = 0x40;
  for (i = 0; i < len; i = i + 1) {
    if ((i % period) * 2 < period) { level = 0x40; } else { level = 0xC0; }
    __stb(dst + i, level);
  }
  return 0;
}

int stop(void) {
  g_playing = 0;
  if (g_mmio != 0) { *(g_mmio + R_PO_CR) = 0; }
  if (g_pos_ptr != 0) {
    ExFreePoolWithTag(g_pos_ptr, TAG);
    g_pos_ptr = 0;
  }
  return 0;
}

int halt(void) {
  stop();
  if (g_sync != 0) {
    PcUnregisterInterruptSync(g_sync);
    g_sync = 0;
  }
  if (g_bdl != 0) {
    ExFreePoolWithTag(g_bdl, TAG);
    g_bdl = 0;
  }
  if (g_ctx != 0) {
    ExFreePoolWithTag(g_ctx, TAG);
    g_ctx = 0;
  }
  return 0;
}

int initialize(void) {
  int ctx;
  int sync;
  int status;

  ctx = ExAllocatePoolWithTag(0, CTX_SIZE, TAG);
  if (ctx == 0) { return 1; }
  g_ctx = ctx;

  int mmio;
  status = NdisMMapIoSpace(&mmio, 0);
  if (status != 0) {
    ExFreePoolWithTag(ctx, TAG);
    g_ctx = 0;
    return 1;
  }
  g_mmio = mmio;

  int bdl = ExAllocatePoolWithTag(0, BDL_SIZE, TAG);
  if (bdl == 0) {
    ExFreePoolWithTag(ctx, TAG);
    g_ctx = 0;
    return 1;
  }
  g_bdl = bdl;

  status = PcNewInterruptSync(&sync, isr, ctx);
  if (status != 0) {
    ExFreePoolWithTag(bdl, TAG);
    g_bdl = 0;
    ExFreePoolWithTag(ctx, TAG);
    g_ctx = 0;
    return 1;
  }
  g_sync = sync;

  if (codec_init(mmio)) {
    // codec never came ready: keep going with defaults, like the
    // shipping driver does, but log it
    KeGetCurrentIrql();
  }
  g_volume = codec_read(mmio, MIX_MASTER);
  write_beep(bdl, 32, 8);
  return 0;
}

int driver_entry(void) {
  chars[0] = initialize;
  chars[1] = play;
  chars[2] = stop;
  chars[3] = 0;
  chars[4] = 0;
  chars[5] = halt;
  return PcRegisterMiniport(chars);
}
|}

let source = {|
int isr(int ctx) {
  int mmio = g_mmio;
  if (mmio == 0) { return 0; }
  int sta = *(mmio + R_GLOB_STA);
  if ((sta & 0x40) == 0) { return 0; }
  *(mmio + R_GLOB_ACK) = sta;
  if (g_playing) {
    // BUG (race -> BSOD): g_pos_ptr is published by Play only after the
    // stream is started; an interrupt in between dereferences NULL.
    int civ = *(mmio + R_PO_CIV);
    *(g_pos_ptr + 0) = civ & 0x1F;
  }
  return 1;
}

int play(int buf, int len) {
  if (g_ctx == 0) { return 1; }
  if (g_mmio == 0) { return 1; }
  if (len < 4) { return 1; }
  if (__ltu(BDL_SIZE, len)) { len = BDL_SIZE; }

  int i;
  for (i = 0; i < len; i = i + 1) {
    __stb(g_bdl + i, __ldb(buf + i));
  }
  *(g_mmio + R_PO_LVI) = (len >> 2) & 0x1F;

  // BUG: the stream is started (and g_playing announced) before the
  // position pointer is set up.
  g_playing = 1;
  *(g_mmio + R_PO_CR) = 1;
  int pos = ExAllocatePoolWithTag(0, 16, TAG);
  if (pos == 0) {
    g_playing = 0;
    *(g_mmio + R_PO_CR) = 0;
    return 1;
  }
  g_pos_ptr = pos;
  return 0;
}
|} ^ common

let fixed_source = {|
int isr(int ctx) {
  int mmio = g_mmio;
  if (mmio == 0) { return 0; }
  int sta = *(mmio + R_GLOB_STA);
  if ((sta & 0x40) == 0) { return 0; }
  *(mmio + R_GLOB_ACK) = sta;
  if (g_playing && g_pos_ptr != 0) {
    int civ = *(mmio + R_PO_CIV);
    *(g_pos_ptr + 0) = civ & 0x1F;
  }
  return 1;
}

int play(int buf, int len) {
  if (g_ctx == 0) { return 1; }
  if (g_mmio == 0) { return 1; }
  if (len < 4) { return 1; }
  if (__ltu(BDL_SIZE, len)) { len = BDL_SIZE; }

  int pos = ExAllocatePoolWithTag(0, 16, TAG);
  if (pos == 0) { return 1; }

  int i;
  for (i = 0; i < len; i = i + 1) {
    __stb(g_bdl + i, __ldb(buf + i));
  }
  *(g_mmio + R_PO_LVI) = (len >> 2) & 0x1F;

  // Publish the position pointer before the stream can interrupt.
  g_pos_ptr = pos;
  g_playing = 1;
  *(g_mmio + R_PO_CR) = 1;
  return 0;
}
|} ^ common

let memo = ref None
let memo_fixed = ref None

let image () =
  match !memo with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"ac97" source in
      memo := Some img;
      img

let fixed_image () =
  match !memo_fixed with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"ac97-fixed" fixed_source in
      memo_fixed := Some img;
      img

let registry = [ ("DefaultVolume", 0x0808) ]

let descriptor =
  { Ddt_kernel.Pci.vendor_id = 0x8086; device_id = 0x2415; revision = 1;
    bar_sizes = [ 0x400; 0x100 ]; irq_line = 3 }
