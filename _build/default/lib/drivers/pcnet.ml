let common = {|
// pcnet -- AMD PCNet/LANCE-style PCI Ethernet miniport
const TAG       = 0x50434E54;    // 'PCNT'
const CTX_SIZE  = 160;
const CTX_MMIO  = 0;
const CTX_RING  = 4;             // receive ring buffer pointer
const CTX_PKT   = 8;             // preallocated receive packet
const CTX_BUF   = 12;            // preallocated receive buffer descriptor
const CTX_PKTPOOL = 16;
const CTX_BUFPOOL = 20;
const CTX_STATS_RX = 24;
const CTX_STATS_TX = 28;
const RING_SIZE = 256;

const OID_SUPPORTED = 1;
const OID_STATS_RX  = 2;
const OID_STATS_TX  = 3;

const CSR0 = 0;   // status/control
const CSR1 = 4;   // ack
const CSR2 = 8;   // rx status
const RDP  = 16;  // data port
const RAP  = 20;

int g_ctx;
int chars[8];

int isr(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  int csr0 = *(mmio + CSR0);
  if ((csr0 & 0x80) == 0) { return 0; }   // not our interrupt
  *(mmio + CSR1) = csr0;                  // acknowledge
  return 3;
}

int handle_interrupt(int ctx) {
  int mmio = *(ctx + CTX_MMIO);
  int rx = *(mmio + CSR2);
  if (rx & 1) {
    *(ctx + CTX_STATS_RX) = *(ctx + CTX_STATS_RX) + 1;
    NdisMIndicateReceivePacket(*(ctx + CTX_PKT));
  }
  return 0;
}

int query(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (oid == OID_SUPPORTED) { *buf = 3; return 0; }
  if (oid == OID_STATS_RX) {
    if (g_ctx != 0) { *buf = *(g_ctx + CTX_STATS_RX); } else { *buf = 0; }
    return 0;
  }
  if (oid == OID_STATS_TX) {
    if (g_ctx != 0) { *buf = *(g_ctx + CTX_STATS_TX); } else { *buf = 0; }
    return 0;
  }
  return 4;
}

int set_information(int oid, int buf, int len) {
  if (len < 4) { return 2; }
  if (oid == OID_STATS_RX) {
    if (g_ctx != 0) { *(g_ctx + CTX_STATS_RX) = 0; }
    return 0;
  }
  return 4;
}

int send(int pkt, int len) {
  if (g_ctx == 0) { return 1; }
  if (len < 14) { return 1; }
  int mmio = *(g_ctx + CTX_MMIO);
  int i;
  *(mmio + RAP) = 0;
  for (i = 0; i < len; i = i + 1) {
    __stb(mmio + RDP, __ldb(pkt + i));
  }
  *(g_ctx + CTX_STATS_TX) = *(g_ctx + CTX_STATS_TX) + 1;
  return 0;
}

// Soft reset: stop the chip, clear counters, restart with the stored
// duplex mode.
int reset(void) {
  if (g_ctx == 0) { return 1; }
  int mmio = *(g_ctx + CTX_MMIO);
  *(mmio + CSR0) = 4;                      // STOP
  *(g_ctx + CTX_STATS_RX) = 0;
  *(g_ctx + CTX_STATS_TX) = 0;
  *(mmio + CSR0) = 1;                      // INIT|START
  return 0;
}

int driver_entry(void) {
  chars[0] = initialize;
  chars[1] = query;
  chars[2] = set_information;
  chars[3] = send;
  chars[4] = isr;
  chars[5] = handle_interrupt;
  chars[6] = halt;
  chars[7] = reset;
  return NdisMRegisterMiniport(chars);
}
|}

let source = {|
int initialize(void) {
  int cfg;
  int ctx;
  int mmio;
  int ring;
  int pktpool;
  int bufpool;
  int pkt;
  int bufd;
  int status;

  status = NdisOpenConfiguration(&cfg);
  if (status != 0) { return 1; }
  int mode = NdisReadConfiguration(cfg, "FullDuplex", 1);
  NdisCloseConfiguration(cfg);

  status = NdisAllocateMemoryWithTag(&ctx, CTX_SIZE, TAG);
  if (status != 0) { return 1; }
  g_ctx = ctx;
  NdisMSetAttributes(ctx);

  status = NdisMMapIoSpace(&mmio, 0);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  *(ctx + CTX_MMIO) = mmio;
  if (mode) { *(mmio + CSR0) = 3; } else { *(mmio + CSR0) = 1; }

  // BUG (leak): this ring buffer is never freed anywhere, not even in
  // Halt.
  status = NdisAllocateMemoryWithTag(&ring, RING_SIZE, TAG);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  *(ctx + CTX_RING) = ring;

  status = NdisAllocatePacketPool(&pktpool, 16);
  if (status != 0) {
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  *(ctx + CTX_PKTPOOL) = pktpool;

  status = NdisAllocateBufferPool(&bufpool, 16);
  if (status != 0) {
    // BUG (leak): bails out without freeing the packet pool (or the
    // ring).
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  *(ctx + CTX_BUFPOOL) = bufpool;

  status = NdisAllocatePacket(&pkt, pktpool);
  if (status != 0) {
    // BUG (leak): pools and ring leak again on this failure path.
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  *(ctx + CTX_PKT) = pkt;

  status = NdisAllocateBuffer(&bufd, bufpool, ring, RING_SIZE);
  if (status != 0) {
    // BUG (leak): the allocated packet and both pools leak here too.
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  *(ctx + CTX_BUF) = bufd;

  status = NdisMRegisterInterrupt(10);
  if (status != 0) {
    NdisFreeBuffer(bufd);
    NdisFreePacket(pkt);
    NdisFreeBufferPool(bufpool);
    NdisFreePacketPool(pktpool);
    NdisFreeMemory(ctx, CTX_SIZE, 0);
    g_ctx = 0;
    return 1;
  }
  return 0;
}

int halt(void) {
  if (g_ctx == 0) { return 0; }
  NdisMDeregisterInterrupt();
  NdisFreeBuffer(*(g_ctx + CTX_BUF));
  NdisFreePacket(*(g_ctx + CTX_PKT));
  NdisFreeBufferPool(*(g_ctx + CTX_BUFPOOL));
  NdisFreePacketPool(*(g_ctx + CTX_PKTPOOL));
  // BUG (leak): the receive ring at CTX_RING is forgotten.
  NdisFreeMemory(g_ctx, CTX_SIZE, 0);
  g_ctx = 0;
  return 0;
}
|} ^ common

let fixed_source = {|
int free_rx_resources(int ctx) {
  if (*(ctx + CTX_BUF) != 0)     { NdisFreeBuffer(*(ctx + CTX_BUF)); }
  if (*(ctx + CTX_PKT) != 0)     { NdisFreePacket(*(ctx + CTX_PKT)); }
  if (*(ctx + CTX_BUFPOOL) != 0) { NdisFreeBufferPool(*(ctx + CTX_BUFPOOL)); }
  if (*(ctx + CTX_PKTPOOL) != 0) { NdisFreePacketPool(*(ctx + CTX_PKTPOOL)); }
  if (*(ctx + CTX_RING) != 0)    { NdisFreeMemory(*(ctx + CTX_RING), RING_SIZE, 0); }
  return 0;
}

int fail_init(int ctx) {
  free_rx_resources(ctx);
  NdisFreeMemory(ctx, CTX_SIZE, 0);
  g_ctx = 0;
  return 1;
}

int initialize(void) {
  int cfg;
  int ctx;
  int mmio;
  int ring;
  int pktpool;
  int bufpool;
  int pkt;
  int bufd;
  int status;

  status = NdisOpenConfiguration(&cfg);
  if (status != 0) { return 1; }
  int mode = NdisReadConfiguration(cfg, "FullDuplex", 1);
  NdisCloseConfiguration(cfg);

  status = NdisAllocateMemoryWithTag(&ctx, CTX_SIZE, TAG);
  if (status != 0) { return 1; }
  g_ctx = ctx;
  NdisMSetAttributes(ctx);
  *(ctx + CTX_RING) = 0;
  *(ctx + CTX_PKT) = 0;
  *(ctx + CTX_BUF) = 0;
  *(ctx + CTX_PKTPOOL) = 0;
  *(ctx + CTX_BUFPOOL) = 0;

  status = NdisMMapIoSpace(&mmio, 0);
  if (status != 0) { return fail_init(ctx); }
  *(ctx + CTX_MMIO) = mmio;
  if (mode) { *(mmio + CSR0) = 3; } else { *(mmio + CSR0) = 1; }

  status = NdisAllocateMemoryWithTag(&ring, RING_SIZE, TAG);
  if (status != 0) { return fail_init(ctx); }
  *(ctx + CTX_RING) = ring;

  status = NdisAllocatePacketPool(&pktpool, 16);
  if (status != 0) { return fail_init(ctx); }
  *(ctx + CTX_PKTPOOL) = pktpool;

  status = NdisAllocateBufferPool(&bufpool, 16);
  if (status != 0) { return fail_init(ctx); }
  *(ctx + CTX_BUFPOOL) = bufpool;

  status = NdisAllocatePacket(&pkt, pktpool);
  if (status != 0) { return fail_init(ctx); }
  *(ctx + CTX_PKT) = pkt;

  status = NdisAllocateBuffer(&bufd, bufpool, ring, RING_SIZE);
  if (status != 0) { return fail_init(ctx); }
  *(ctx + CTX_BUF) = bufd;

  status = NdisMRegisterInterrupt(10);
  if (status != 0) { return fail_init(ctx); }
  return 0;
}

int halt(void) {
  if (g_ctx == 0) { return 0; }
  NdisMDeregisterInterrupt();
  free_rx_resources(g_ctx);
  NdisFreeMemory(g_ctx, CTX_SIZE, 0);
  g_ctx = 0;
  return 0;
}
|} ^ common

let memo = ref None
let memo_fixed = ref None

let image () =
  match !memo with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"pcnet" source in
      memo := Some img;
      img

let fixed_image () =
  match !memo_fixed with
  | Some img -> img
  | None ->
      let img = Ddt_minicc.Codegen.compile ~name:"pcnet-fixed" fixed_source in
      memo_fixed := Some img;
      img

let registry = [ ("FullDuplex", 1) ]

let descriptor =
  { Ddt_kernel.Pci.vendor_id = 0x1022; device_id = 0x2000; revision = 3;
    bar_sizes = [ 0x1000 ]; irq_line = 10 }
