lib/hw/symdev.ml: Ddt_dvm Ddt_kernel Ddt_solver List Printf Random
