lib/hw/symdev.mli: Ddt_dvm Ddt_kernel Ddt_solver
