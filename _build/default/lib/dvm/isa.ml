type reg = int

let sp = 15
let fp = 14
let num_regs = 16

type aluop =
  | Add | Sub | Mul | Divu | Remu
  | And | Or | Xor
  | Shl | Shru | Shrs

type cmpop = Eq | Ne | Ltu | Leu | Lts | Les

type instr =
  | Nop
  | Hlt
  | Mov of reg * reg
  | Movi of reg * int
  | Lea of reg * int
  | Alu of aluop * reg * reg * reg
  | Alui of aluop * reg * reg * int
  | Cmp of cmpop * reg * reg * reg
  | Cmpi of cmpop * reg * reg * int
  | Ldw of reg * reg * int
  | Ldb of reg * reg * int
  | Stw of reg * int * reg
  | Stb of reg * int * reg
  | Push of reg
  | Pop of reg
  | Jmp of int
  | Jz of reg * int
  | Jnz of reg * int
  | Call of int
  | Callr of reg
  | Ret
  | Kcall of int
  | Cli
  | Sti

let instr_size = 8
let imm_field_offset = 4

exception Invalid_opcode of int * int

let aluop_base = 0x10

let aluop_index = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Divu -> 3 | Remu -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Shl -> 8 | Shru -> 9 | Shrs -> 10

let aluop_of_index = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Divu | 4 -> Remu
  | 5 -> And | 6 -> Or | 7 -> Xor | 8 -> Shl | 9 -> Shru | 10 -> Shrs
  | _ -> assert false

let cmpop_base = 0x30

let cmpop_index = function
  | Eq -> 0 | Ne -> 1 | Ltu -> 2 | Leu -> 3 | Lts -> 4 | Les -> 5

let cmpop_of_index = function
  | 0 -> Eq | 1 -> Ne | 2 -> Ltu | 3 -> Leu | 4 -> Lts | 5 -> Les
  | _ -> assert false

(* Fixed opcodes outside the ALU/CMP ranges. ALU register forms occupy
   [0x10, 0x1A], ALU immediate forms [0x50, 0x5A], CMP register forms
   [0x30, 0x35], CMP immediate forms [0x70, 0x75]. *)
let op_nop = 0x00
let op_hlt = 0x01
let op_mov = 0x02
let op_movi = 0x03
let op_lea = 0x04
let op_ldw = 0x40
let op_ldb = 0x41
let op_stw = 0x42
let op_stb = 0x43
let op_push = 0x80
let op_pop = 0x81
let op_jmp = 0x82
let op_jz = 0x83
let op_jnz = 0x84
let op_call = 0x85
let op_callr = 0x86
let op_ret = 0x87
let op_kcall = 0x88
let op_cli = 0x89
let op_sti = 0x8A

let fields = function
  | Nop -> (op_nop, 0, 0, 0, 0)
  | Hlt -> (op_hlt, 0, 0, 0, 0)
  | Mov (rd, rs) -> (op_mov, rd, rs, 0, 0)
  | Movi (rd, imm) -> (op_movi, rd, 0, 0, imm)
  | Lea (rd, imm) -> (op_lea, rd, 0, 0, imm)
  | Alu (op, rd, rs1, rs2) -> (aluop_base + aluop_index op, rd, rs1, rs2, 0)
  | Alui (op, rd, rs1, imm) -> (0x50 + aluop_index op, rd, rs1, 0, imm)
  | Cmp (op, rd, rs1, rs2) -> (cmpop_base + cmpop_index op, rd, rs1, rs2, 0)
  | Cmpi (op, rd, rs1, imm) -> (0x70 + cmpop_index op, rd, rs1, 0, imm)
  | Ldw (rd, rs1, off) -> (op_ldw, rd, rs1, 0, off)
  | Ldb (rd, rs1, off) -> (op_ldb, rd, rs1, 0, off)
  | Stw (rs1, off, rs2) -> (op_stw, 0, rs1, rs2, off)
  | Stb (rs1, off, rs2) -> (op_stb, 0, rs1, rs2, off)
  | Push rs -> (op_push, 0, rs, 0, 0)
  | Pop rd -> (op_pop, rd, 0, 0, 0)
  | Jmp imm -> (op_jmp, 0, 0, 0, imm)
  | Jz (rs, imm) -> (op_jz, 0, rs, 0, imm)
  | Jnz (rs, imm) -> (op_jnz, 0, rs, 0, imm)
  | Call imm -> (op_call, 0, 0, 0, imm)
  | Callr rs -> (op_callr, 0, rs, 0, 0)
  | Ret -> (op_ret, 0, 0, 0, 0)
  | Kcall imm -> (op_kcall, 0, 0, 0, imm)
  | Cli -> (op_cli, 0, 0, 0, 0)
  | Sti -> (op_sti, 0, 0, 0, 0)

let encode i =
  let opc, rd, rs1, rs2, imm = fields i in
  let b = Bytes.create instr_size in
  Bytes.set_uint8 b 0 opc;
  Bytes.set_uint8 b 1 rd;
  Bytes.set_uint8 b 2 rs1;
  Bytes.set_uint8 b 3 rs2;
  Bytes.set_int32_le b 4 (Int32.of_int (imm land 0xFFFFFFFF));
  b

let decode buf pos =
  let opc = Bytes.get_uint8 buf pos in
  let rd = Bytes.get_uint8 buf (pos + 1) in
  let rs1 = Bytes.get_uint8 buf (pos + 2) in
  let rs2 = Bytes.get_uint8 buf (pos + 3) in
  let imm = Int32.to_int (Bytes.get_int32_le buf (pos + 4)) land 0xFFFFFFFF in
  if opc >= aluop_base && opc <= aluop_base + 10 then
    Alu (aluop_of_index (opc - aluop_base), rd, rs1, rs2)
  else if opc >= 0x50 && opc <= 0x5A then
    Alui (aluop_of_index (opc - 0x50), rd, rs1, imm)
  else if opc >= cmpop_base && opc <= cmpop_base + 5 then
    Cmp (cmpop_of_index (opc - cmpop_base), rd, rs1, rs2)
  else if opc >= 0x70 && opc <= 0x75 then
    Cmpi (cmpop_of_index (opc - 0x70), rd, rs1, imm)
  else if opc = op_nop then Nop
  else if opc = op_hlt then Hlt
  else if opc = op_mov then Mov (rd, rs1)
  else if opc = op_movi then Movi (rd, imm)
  else if opc = op_lea then Lea (rd, imm)
  else if opc = op_ldw then Ldw (rd, rs1, imm)
  else if opc = op_ldb then Ldb (rd, rs1, imm)
  else if opc = op_stw then Stw (rs1, imm, rs2)
  else if opc = op_stb then Stb (rs1, imm, rs2)
  else if opc = op_push then Push rs1
  else if opc = op_pop then Pop rd
  else if opc = op_jmp then Jmp imm
  else if opc = op_jz then Jz (rs1, imm)
  else if opc = op_jnz then Jnz (rs1, imm)
  else if opc = op_call then Call imm
  else if opc = op_callr then Callr rs1
  else if opc = op_ret then Ret
  else if opc = op_kcall then Kcall imm
  else if opc = op_cli then Cli
  else if opc = op_sti then Sti
  else raise (Invalid_opcode (opc, pos))

let string_of_aluop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Divu -> "divu"
  | Remu -> "remu" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shru -> "shru" | Shrs -> "shrs"

let string_of_cmpop = function
  | Eq -> "cmpeq" | Ne -> "cmpne" | Ltu -> "cmpltu" | Leu -> "cmpleu"
  | Lts -> "cmplts" | Les -> "cmples"

let pp_reg fmt r =
  if r = sp then Format.pp_print_string fmt "sp"
  else if r = fp then Format.pp_print_string fmt "fp"
  else Format.fprintf fmt "r%d" r

let pp fmt = function
  | Nop -> Format.pp_print_string fmt "nop"
  | Hlt -> Format.pp_print_string fmt "hlt"
  | Mov (rd, rs) -> Format.fprintf fmt "mov %a, %a" pp_reg rd pp_reg rs
  | Movi (rd, imm) -> Format.fprintf fmt "movi %a, %d" pp_reg rd imm
  | Lea (rd, imm) -> Format.fprintf fmt "lea %a, 0x%x" pp_reg rd imm
  | Alu (op, rd, rs1, rs2) ->
      Format.fprintf fmt "%s %a, %a, %a" (string_of_aluop op) pp_reg rd
        pp_reg rs1 pp_reg rs2
  | Alui (op, rd, rs1, imm) ->
      Format.fprintf fmt "%si %a, %a, %d" (string_of_aluop op) pp_reg rd
        pp_reg rs1 imm
  | Cmp (op, rd, rs1, rs2) ->
      Format.fprintf fmt "%s %a, %a, %a" (string_of_cmpop op) pp_reg rd
        pp_reg rs1 pp_reg rs2
  | Cmpi (op, rd, rs1, imm) ->
      Format.fprintf fmt "%si %a, %a, %d" (string_of_cmpop op) pp_reg rd
        pp_reg rs1 imm
  | Ldw (rd, rs1, off) ->
      Format.fprintf fmt "ldw %a, [%a%+d]" pp_reg rd pp_reg rs1 off
  | Ldb (rd, rs1, off) ->
      Format.fprintf fmt "ldb %a, [%a%+d]" pp_reg rd pp_reg rs1 off
  | Stw (rs1, off, rs2) ->
      Format.fprintf fmt "stw [%a%+d], %a" pp_reg rs1 off pp_reg rs2
  | Stb (rs1, off, rs2) ->
      Format.fprintf fmt "stb [%a%+d], %a" pp_reg rs1 off pp_reg rs2
  | Push rs -> Format.fprintf fmt "push %a" pp_reg rs
  | Pop rd -> Format.fprintf fmt "pop %a" pp_reg rd
  | Jmp imm -> Format.fprintf fmt "jmp 0x%x" imm
  | Jz (rs, imm) -> Format.fprintf fmt "jz %a, 0x%x" pp_reg rs imm
  | Jnz (rs, imm) -> Format.fprintf fmt "jnz %a, 0x%x" pp_reg rs imm
  | Call imm -> Format.fprintf fmt "call 0x%x" imm
  | Callr rs -> Format.fprintf fmt "callr %a" pp_reg rs
  | Ret -> Format.pp_print_string fmt "ret"
  | Kcall imm -> Format.fprintf fmt "kcall %d" imm
  | Cli -> Format.pp_print_string fmt "cli"
  | Sti -> Format.pp_print_string fmt "sti"

let to_string i = Format.asprintf "%a" pp i
