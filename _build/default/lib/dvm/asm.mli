(** Two-pass assembler producing DXE images.

    Syntax (one statement per line, [;] starts a comment):

    {v
    .text                       ; switch to the text section (default)
    .data                       ; switch to the data section
    .entry main                 ; entry symbol (default: driver_entry)
    .func main                  ; function symbol + label at this offset
    main:                       ; plain label
        movi  r0, 42
        lea   r1, message       ; address of a label (relocated)
        ldw   r2, [r1+4]
        stw   [sp-8], r2
        add   r0, r0, r2        ; register form
        add   r0, r0, 7         ; immediate form, selected automatically
        jz    r0, done
        call  helper
        kcall NdisAllocateMemoryWithTag   ; import by name
    done:
        ret
    .data
    message: .asciz "hello"
    table:   .word 1, 2, main   ; label refs are relocated
    buffer:  .space 64
    bytes:   .byte 0xDE, 0xAD
    v}

    All labels are exported; [.func] labels additionally appear in the
    image's function list (used for Table 1 statistics). *)

exception Error of string * int
(** [(message, line_number)] *)

val assemble : name:string -> string -> Image.t
