(** The DVM instruction set.

    DVM is a little-endian 32-bit word machine with 16 general registers
    and byte-addressed memory. It plays the role x86/QEMU plays in the DDT
    paper: drivers exist only as binary images of these instructions.

    Conventions (used by the Mini-C compiler and the kernel ABI):
    - [r15] is the stack pointer ([sp]), [r14] the frame pointer ([fp]);
    - arguments are pushed right-to-left; [CALL] pushes the return
      address; return values travel in [r0];
    - [KCALL n] invokes entry [n] of the image's import table (a kernel
      API function executed natively); arguments are read from the stack.

    Every instruction encodes to exactly {!instr_size} bytes:
    [opcode u8, rd u8, rs1 u8, rs2 u8, imm u32 LE]. *)

type reg = int
(** Register index, 0..15. *)

val sp : reg
val fp : reg
val num_regs : int

type aluop =
  | Add | Sub | Mul | Divu | Remu
  | And | Or | Xor
  | Shl | Shru | Shrs

type cmpop = Eq | Ne | Ltu | Leu | Lts | Les

type instr =
  | Nop
  | Hlt
  | Mov of reg * reg
  | Movi of reg * int
  | Lea of reg * int        (** like [Movi] but the imm is a relocated address *)
  | Alu of aluop * reg * reg * reg
  | Alui of aluop * reg * reg * int
  | Cmp of cmpop * reg * reg * reg
  | Cmpi of cmpop * reg * reg * int
  | Ldw of reg * reg * int  (** [Ldw (rd, rs1, off)]: rd <- mem32[rs1+off] *)
  | Ldb of reg * reg * int
  | Stw of reg * int * reg  (** [Stw (rs1, off, rs2)]: mem32[rs1+off] <- rs2 *)
  | Stb of reg * int * reg
  | Push of reg
  | Pop of reg
  | Jmp of int
  | Jz of reg * int
  | Jnz of reg * int
  | Call of int
  | Callr of reg
  | Ret
  | Kcall of int
  | Cli
  | Sti

val instr_size : int
(** 8 bytes. *)

exception Invalid_opcode of int * int
(** [(opcode, position)] *)

val encode : instr -> bytes
val decode : bytes -> int -> instr
(** [decode buf pos] decodes the instruction at byte offset [pos]. *)

val imm_field_offset : int
(** Byte offset of the 32-bit immediate inside an encoded instruction —
    relocations patch this field in place. *)

val pp : Format.formatter -> instr -> unit
val to_string : instr -> string
