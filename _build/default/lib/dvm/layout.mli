(** The DVM physical memory map shared by the loader, kernel and engines. *)

val image_base : int        (** driver image (text+data+bss) load address *)
val heap_base : int         (** kernel pool allocations handed to the driver *)
val heap_limit : int
val stack_top : int         (** initial [sp]; the stack grows down *)
val stack_limit : int       (** lowest legal stack address *)
val kernel_base : int       (** kernel-owned objects (opaque handles) *)
val kernel_limit : int
val mmio_base : int         (** device BARs are allocated from here *)
val mmio_limit : int
val return_sentinel : int
(** Pseudo return address pushed by the engines when the kernel invokes a
    driver function; a [Ret] to this address ends the nested invocation. *)

val null_guard : int
(** Addresses below this fault as null-pointer dereferences. *)
