let disassemble (img : Image.t) =
  let n = Bytes.length img.Image.text in
  let rec go pos acc =
    if pos + Isa.instr_size > n then List.rev acc
    else
      let acc =
        match Isa.decode img.Image.text pos with
        | i -> (pos, i) :: acc
        | exception Isa.Invalid_opcode _ -> acc
      in
      go (pos + Isa.instr_size) acc
  in
  go 0 []

let pp_listing fmt (img : Image.t) =
  let funcs = List.map (fun (n, a) -> (a, n)) img.Image.funcs in
  List.iter
    (fun (off, instr) ->
      (match List.assoc_opt off funcs with
       | Some name -> Format.fprintf fmt "%s:@." name
       | None -> ());
      Format.fprintf fmt "  %06x: %a@." off Isa.pp instr)
    (disassemble img)

let basic_block_starts (img : Image.t) =
  let leaders = Hashtbl.create 64 in
  let text_len = Bytes.length img.Image.text in
  let add off = if off >= 0 && off < text_len then Hashtbl.replace leaders off () in
  List.iter (fun (_, a) -> add a) img.Image.funcs;
  add img.Image.entry;
  (* Relocated jump targets are stored image-relative pre-load, so the
     decoded immediates here are image-relative too. *)
  List.iter
    (fun (off, instr) ->
      match instr with
      | Isa.Jmp t -> add t; add (off + Isa.instr_size)
      | Isa.Jz (_, t) | Isa.Jnz (_, t) ->
          add t;
          add (off + Isa.instr_size)
      | Isa.Call t -> add t; add (off + Isa.instr_size)
      | Isa.Callr _ | Isa.Ret | Isa.Hlt | Isa.Kcall _ ->
          add (off + Isa.instr_size)
      | _ -> ())
    (disassemble img);
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) leaders [])
