(** Disassembler for DXE images: linear sweep over the text section. *)

val disassemble : Image.t -> (int * Isa.instr) list
(** [(image-relative offset, instruction)] pairs. Bytes that do not decode
    are skipped one instruction slot at a time. *)

val pp_listing : Format.formatter -> Image.t -> unit
(** Human-readable listing with function labels interleaved. *)

val basic_block_starts : Image.t -> int list
(** Image-relative offsets of basic-block leaders: function entries,
    branch targets, and fall-throughs after branches/calls/returns. Used
    for the coverage accounting of Figures 2 and 3. *)
