let page_size = 4096
let page_bits = 12

type mmio = {
  mmio_start : int;
  mmio_size : int;
  mmio_read : int -> int;
  mmio_write : int -> int -> unit;
}

type t = {
  pages : (int, bytes) Hashtbl.t;
  mutable mmios : mmio list;
}

let create () = { pages = Hashtbl.create 64; mmios = [] }

let add_mmio t m = t.mmios <- m :: t.mmios

let find_mmio t addr =
  List.find_opt
    (fun m -> addr >= m.mmio_start && addr < m.mmio_start + m.mmio_size)
    t.mmios

let page t addr =
  let idx = addr lsr page_bits in
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.add t.pages idx p;
      p

let read_u8 t addr =
  let addr = addr land 0xFFFFFFFF in
  match find_mmio t addr with
  | Some m -> m.mmio_read (addr - m.mmio_start) land 0xFF
  | None -> Bytes.get_uint8 (page t addr) (addr land (page_size - 1))

let write_u8 t addr v =
  let addr = addr land 0xFFFFFFFF in
  match find_mmio t addr with
  | Some m -> m.mmio_write (addr - m.mmio_start) (v land 0xFF)
  | None -> Bytes.set_uint8 (page t addr) (addr land (page_size - 1)) (v land 0xFF)

let read_u32 t addr =
  read_u8 t addr
  lor (read_u8 t (addr + 1) lsl 8)
  lor (read_u8 t (addr + 2) lsl 16)
  lor (read_u8 t (addr + 3) lsl 24)

let write_u32 t addr v =
  write_u8 t addr v;
  write_u8 t (addr + 1) (v lsr 8);
  write_u8 t (addr + 2) (v lsr 16);
  write_u8 t (addr + 3) (v lsr 24)

let load_bytes t addr b =
  Bytes.iteri (fun i c -> write_u8 t (addr + i) (Char.code c)) b

let read_bytes t addr len =
  Bytes.init len (fun i -> Char.chr (read_u8 t (addr + i)))

let read_cstring t addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i < 4096 then
      let c = read_u8 t (addr + i) in
      if c <> 0 then begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let write_cstring t addr s =
  String.iteri (fun i c -> write_u8 t (addr + i) (Char.code c)) s;
  write_u8 t (addr + String.length s) 0

let snapshot t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun k v -> Hashtbl.add pages k (Bytes.copy v)) t.pages;
  { pages; mmios = t.mmios }

let iter_pages t f =
  Hashtbl.iter (fun idx p -> f (idx lsl page_bits) p) t.pages
