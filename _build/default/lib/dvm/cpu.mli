(** The DVM CPU: 16 general registers, a program counter and an
    interrupt-enable flag. *)

type t = {
  regs : int array;
  mutable pc : int;
  mutable int_enabled : bool;
  mutable halted : bool;
}

val create : unit -> t
val reset : t -> unit
val get : t -> Isa.reg -> int
val set : t -> Isa.reg -> int -> unit
val copy : t -> t
val pp : Format.formatter -> t -> unit
