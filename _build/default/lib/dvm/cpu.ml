type t = {
  regs : int array;
  mutable pc : int;
  mutable int_enabled : bool;
  mutable halted : bool;
}

let create () =
  { regs = Array.make Isa.num_regs 0; pc = 0; int_enabled = true;
    halted = false }

let reset t =
  Array.fill t.regs 0 Isa.num_regs 0;
  t.pc <- 0;
  t.int_enabled <- true;
  t.halted <- false

let get t r = t.regs.(r)
let set t r v = t.regs.(r) <- v land 0xFFFFFFFF

let copy t =
  { regs = Array.copy t.regs; pc = t.pc; int_enabled = t.int_enabled;
    halted = t.halted }

let pp fmt t =
  Format.fprintf fmt "pc=0x%x sp=0x%x fp=0x%x int=%b" t.pc
    t.regs.(Isa.sp) t.regs.(Isa.fp) t.int_enabled;
  Array.iteri
    (fun i v -> if v <> 0 && i < 14 then Format.fprintf fmt " r%d=0x%x" i v)
    t.regs
