lib/dvm/asm.mli: Image
