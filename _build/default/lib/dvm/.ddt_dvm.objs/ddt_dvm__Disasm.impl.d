lib/dvm/disasm.ml: Bytes Format Hashtbl Image Isa List
