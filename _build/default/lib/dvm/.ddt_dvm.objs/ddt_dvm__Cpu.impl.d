lib/dvm/cpu.ml: Array Format Isa
