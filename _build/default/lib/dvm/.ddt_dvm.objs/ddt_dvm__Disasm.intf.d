lib/dvm/disasm.mli: Format Image Isa
