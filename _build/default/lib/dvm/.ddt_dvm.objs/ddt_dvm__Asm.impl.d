lib/dvm/asm.ml: Array Buffer Bytes Hashtbl Image Int32 Isa List Printf String
