lib/dvm/image.ml: Array Buffer Bytes Int32 List Mem String
