lib/dvm/isa.mli: Format
