lib/dvm/interp.ml: Cpu Hashtbl Isa Layout List Mem Printf
