lib/dvm/mem.mli:
