lib/dvm/interp.mli: Cpu Hashtbl Isa Mem
