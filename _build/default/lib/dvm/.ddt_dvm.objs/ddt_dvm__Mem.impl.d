lib/dvm/mem.ml: Buffer Bytes Char Hashtbl List String
