lib/dvm/cpu.mli: Format Isa
