lib/dvm/image.mli: Mem
