lib/dvm/layout.mli:
