lib/dvm/isa.ml: Bytes Format Int32
