lib/dvm/layout.ml:
