exception Error of string * int

type section = Text | Data

type operand =
  | Reg of Isa.reg
  | Num of int
  | Sym of string
  | Mem of Isa.reg * int   (* [reg+off] *)

type stmt =
  | Label of string
  | Func of string
  | Entry of string
  | Section of section
  | Ins of string * operand list
  | Dword of operand list
  | Dbyte of int list
  | Dspace of int
  | Dasciz of string

let err line msg = raise (Error (msg, line))

(* --- lexing ----------------------------------------------------------- *)

let strip_comment s =
  match String.index_opt s ';' with
  | Some i -> String.sub s 0 i
  | None -> s

let parse_reg s =
  match String.lowercase_ascii s with
  | "sp" -> Some Isa.sp
  | "fp" -> Some Isa.fp
  | s when String.length s >= 2 && s.[0] = 'r' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some n when n >= 0 && n < Isa.num_regs -> Some n
      | _ -> None)
  | _ -> None

let parse_num s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some n -> Some n
  | None -> None

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9') || c = '_' || c = '.'

let parse_mem_operand line s =
  (* "[reg]", "[reg+off]", "[reg-off]" *)
  let inner = String.sub s 1 (String.length s - 2) |> String.trim in
  let split_at i =
    let base = String.trim (String.sub inner 0 i) in
    let off = String.trim (String.sub inner i (String.length inner - i)) in
    (base, off)
  in
  let base_s, off_s =
    match String.index_opt inner '+' with
    | Some i -> split_at i
    | None -> (
        (* Careful: a '-' can only be the offset sign here. *)
        match String.index_opt inner '-' with
        | Some i -> split_at i
        | None -> (inner, "0"))
  in
  let base =
    match parse_reg base_s with
    | Some r -> r
    | None -> err line (Printf.sprintf "bad base register %S" base_s)
  in
  let off =
    match parse_num (if off_s.[0] = '+' then String.sub off_s 1 (String.length off_s - 1) else off_s) with
    | Some n -> n
    | None -> err line (Printf.sprintf "bad offset %S" off_s)
  in
  Mem (base, off)

let parse_operand line s =
  let s = String.trim s in
  if s = "" then err line "empty operand"
  else if s.[0] = '[' then
    if s.[String.length s - 1] = ']' then parse_mem_operand line s
    else err line "unterminated memory operand"
  else
    match parse_reg s with
    | Some r -> Reg r
    | None -> (
        match parse_num s with
        | Some n -> Num n
        | None ->
            if String.for_all is_ident_char s then Sym s
            else err line (Printf.sprintf "bad operand %S" s))

let split_operands s =
  (* Commas never occur inside our operands, so a plain split suffices. *)
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_string_literal line s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '"' || s.[n - 1] <> '"' then
    err line "expected string literal";
  let body = String.sub s 1 (n - 2) in
  let buf = Buffer.create n in
  let rec go i =
    if i < String.length body then
      if body.[i] = '\\' && i + 1 < String.length body then begin
        (match body.[i + 1] with
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | '0' -> Buffer.add_char buf '\000'
         | c -> Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf body.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let parse_line line_no raw =
  let s = String.trim (strip_comment raw) in
  if s = "" then []
  else
    (* Leading "label:" prefix, possibly followed by more on the line. *)
    let label, rest =
      match String.index_opt s ':' with
      | Some i
        when i > 0
             && String.for_all is_ident_char (String.sub s 0 i)
             && not (String.contains (String.sub s 0 i) '.') ->
          ( [ Label (String.sub s 0 i) ],
            String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
      | _ -> ([], s)
    in
    if rest = "" then label
    else
      let stmt =
        match String.index_opt rest ' ' with
        | None -> (
            match String.lowercase_ascii rest with
            | ".text" -> Section Text
            | ".data" -> Section Data
            | m -> Ins (m, []))
        | Some i ->
            let head = String.lowercase_ascii (String.sub rest 0 i) in
            let tail = String.trim (String.sub rest i (String.length rest - i)) in
            (match head with
             | ".text" -> Section Text
             | ".data" -> Section Data
             | ".entry" -> Entry tail
             | ".func" -> Func tail
             | ".word" -> Dword (List.map (parse_operand line_no) (split_operands tail))
             | ".byte" ->
                 Dbyte
                   (List.map
                      (fun x ->
                        match parse_num x with
                        | Some n -> n land 0xFF
                        | None -> err line_no "bad .byte value")
                      (split_operands tail))
             | ".space" -> (
                 match parse_num tail with
                 | Some n -> Dspace n
                 | None -> err line_no "bad .space size")
             | ".asciz" -> Dasciz (parse_string_literal line_no tail)
             | m -> Ins (m, List.map (parse_operand line_no) (split_operands tail)))
      in
      label @ [ stmt ]

(* --- assembly --------------------------------------------------------- *)

let aluops =
  [ ("add", Isa.Add); ("sub", Isa.Sub); ("mul", Isa.Mul); ("divu", Isa.Divu);
    ("remu", Isa.Remu); ("and", Isa.And); ("or", Isa.Or); ("xor", Isa.Xor);
    ("shl", Isa.Shl); ("shru", Isa.Shru); ("shrs", Isa.Shrs) ]

let cmpops =
  [ ("cmpeq", Isa.Eq); ("cmpne", Isa.Ne); ("cmpltu", Isa.Ltu);
    ("cmpleu", Isa.Leu); ("cmplts", Isa.Lts); ("cmples", Isa.Les) ]

type ctx = {
  mutable imports : string list;         (* reversed *)
  mutable import_count : int;
  import_tbl : (string, int) Hashtbl.t;
}

let import_index ctx name =
  match Hashtbl.find_opt ctx.import_tbl name with
  | Some i -> i
  | None ->
      let i = ctx.import_count in
      Hashtbl.add ctx.import_tbl name i;
      ctx.imports <- name :: ctx.imports;
      ctx.import_count <- i + 1;
      i

(* Size in bytes a statement contributes to its section. *)
let stmt_size = function
  | Label _ | Func _ | Entry _ | Section _ -> 0
  | Ins _ -> Isa.instr_size
  | Dword ops -> 4 * List.length ops
  | Dbyte bs -> List.length bs
  | Dspace n -> n
  | Dasciz s -> String.length s + 1

let assemble ~name source =
  let lines = String.split_on_char '\n' source in
  let stmts =
    List.concat
      (List.mapi
         (fun i raw -> List.map (fun s -> (i + 1, s)) (parse_line (i + 1) raw))
         lines)
  in
  (* Pass 1: label addresses. *)
  let labels = Hashtbl.create 64 in
  let funcs = ref [] in
  let entry_name = ref "driver_entry" in
  let text_size = ref 0 and data_size = ref 0 in
  let section = ref Text in
  List.iter
    (fun (line, s) ->
      let off = match !section with Text -> !text_size | Data -> !data_size in
      (match s with
       | Section sec -> section := sec
       | Entry n -> entry_name := n
       | Label n ->
           if Hashtbl.mem labels n then
             err line (Printf.sprintf "duplicate label %S" n);
           Hashtbl.add labels n (!section, off)
       | Func n ->
           (* Records the function symbol only; the label itself is
              declared by the usual "name:" line. *)
           funcs := (n, off) :: !funcs
       | _ -> ());
      match !section with
      | Text -> text_size := !text_size + stmt_size s
      | Data -> data_size := !data_size + stmt_size s)
    stmts;
  let text_len = !text_size in
  let resolve line n =
    match Hashtbl.find_opt labels n with
    | Some (Text, off) -> off
    | Some (Data, off) -> text_len + off
    | None -> err line (Printf.sprintf "undefined symbol %S" n)
  in
  (* Pass 2: encoding. *)
  let text = Buffer.create text_len in
  let data = Buffer.create !data_size in
  let relocs = ref [] in
  let ctx = { imports = []; import_count = 0; import_tbl = Hashtbl.create 16 } in
  let section = ref Text in
  let emit_instr line i ~reloc =
    if !section <> Text then err line "instruction outside .text";
    if reloc then
      relocs := (Buffer.length text + Isa.imm_field_offset) :: !relocs;
    Buffer.add_bytes text (Isa.encode i)
  in
  let value_or_sym line = function
    | Num n -> (n, false)
    | Sym s -> (resolve line s, true)
    | _ -> err line "expected immediate or symbol"
  in
  let encode_stmt line s =
    match s with
    | Section sec -> section := sec
    | Label _ | Func _ | Entry _ -> ()
    | Dword ops ->
        if !section <> Data then err line ".word outside .data";
        List.iter
          (fun op ->
            let v, is_sym = value_or_sym line op in
            if is_sym then relocs := (text_len + Buffer.length data) :: !relocs;
            Buffer.add_int32_le data (Int32.of_int (v land 0xFFFFFFFF)))
          ops
    | Dbyte bs ->
        if !section <> Data then err line ".byte outside .data";
        List.iter (fun b -> Buffer.add_uint8 data b) bs
    | Dspace n ->
        if !section <> Data then err line ".space outside .data";
        Buffer.add_bytes data (Bytes.make n '\000')
    | Dasciz str ->
        if !section <> Data then err line ".asciz outside .data";
        Buffer.add_string data str;
        Buffer.add_uint8 data 0
    | Ins (m, ops) -> (
        let alu3 op =
          match ops with
          | [ Reg rd; Reg rs1; Reg rs2 ] ->
              emit_instr line (Isa.Alu (op, rd, rs1, rs2)) ~reloc:false
          | [ Reg rd; Reg rs1; o ] ->
              let v, is_sym = value_or_sym line o in
              emit_instr line (Isa.Alui (op, rd, rs1, v)) ~reloc:is_sym
          | _ -> err line (Printf.sprintf "bad operands for %s" m)
        in
        let cmp3 op =
          match ops with
          | [ Reg rd; Reg rs1; Reg rs2 ] ->
              emit_instr line (Isa.Cmp (op, rd, rs1, rs2)) ~reloc:false
          | [ Reg rd; Reg rs1; o ] ->
              let v, is_sym = value_or_sym line o in
              emit_instr line (Isa.Cmpi (op, rd, rs1, v)) ~reloc:is_sym
          | _ -> err line (Printf.sprintf "bad operands for %s" m)
        in
        match m, ops with
        | "nop", [] -> emit_instr line Isa.Nop ~reloc:false
        | "hlt", [] -> emit_instr line Isa.Hlt ~reloc:false
        | "cli", [] -> emit_instr line Isa.Cli ~reloc:false
        | "sti", [] -> emit_instr line Isa.Sti ~reloc:false
        | "ret", [] -> emit_instr line Isa.Ret ~reloc:false
        | "mov", [ Reg rd; Reg rs ] -> emit_instr line (Isa.Mov (rd, rs)) ~reloc:false
        | ("mov" | "movi"), [ Reg rd; o ] ->
            let v, is_sym = value_or_sym line o in
            emit_instr line (Isa.Movi (rd, v)) ~reloc:is_sym
        | "lea", [ Reg rd; o ] ->
            let v, is_sym = value_or_sym line o in
            emit_instr line (Isa.Lea (rd, v)) ~reloc:is_sym
        | "ldw", [ Reg rd; Mem (b, off) ] ->
            emit_instr line (Isa.Ldw (rd, b, off)) ~reloc:false
        | "ldb", [ Reg rd; Mem (b, off) ] ->
            emit_instr line (Isa.Ldb (rd, b, off)) ~reloc:false
        | "stw", [ Mem (b, off); Reg rs ] ->
            emit_instr line (Isa.Stw (b, off, rs)) ~reloc:false
        | "stb", [ Mem (b, off); Reg rs ] ->
            emit_instr line (Isa.Stb (b, off, rs)) ~reloc:false
        | "push", [ Reg rs ] -> emit_instr line (Isa.Push rs) ~reloc:false
        | "pop", [ Reg rd ] -> emit_instr line (Isa.Pop rd) ~reloc:false
        | "jmp", [ o ] ->
            let v, is_sym = value_or_sym line o in
            emit_instr line (Isa.Jmp v) ~reloc:is_sym
        | "jz", [ Reg rs; o ] ->
            let v, is_sym = value_or_sym line o in
            emit_instr line (Isa.Jz (rs, v)) ~reloc:is_sym
        | "jnz", [ Reg rs; o ] ->
            let v, is_sym = value_or_sym line o in
            emit_instr line (Isa.Jnz (rs, v)) ~reloc:is_sym
        | "call", [ Reg rs ] -> emit_instr line (Isa.Callr rs) ~reloc:false
        | "call", [ o ] ->
            let v, is_sym = value_or_sym line o in
            emit_instr line (Isa.Call v) ~reloc:is_sym
        | "callr", [ Reg rs ] -> emit_instr line (Isa.Callr rs) ~reloc:false
        | "kcall", [ Sym s ] ->
            emit_instr line (Isa.Kcall (import_index ctx s)) ~reloc:false
        | "kcall", [ Num n ] -> emit_instr line (Isa.Kcall n) ~reloc:false
        | _ -> (
            match List.assoc_opt m aluops with
            | Some op -> alu3 op
            | None -> (
                match List.assoc_opt m cmpops with
                | Some op -> cmp3 op
                | None ->
                    (* Accept explicit "addi"/"cmpeqi" spellings. *)
                    let base =
                      if String.length m > 1 && m.[String.length m - 1] = 'i'
                      then String.sub m 0 (String.length m - 1)
                      else m
                    in
                    (match List.assoc_opt base aluops with
                     | Some op -> alu3 op
                     | None -> (
                         match List.assoc_opt base cmpops with
                         | Some op -> cmp3 op
                         | None ->
                             err line (Printf.sprintf "unknown mnemonic %S" m))))))
  in
  List.iter (fun (line, s) -> encode_stmt line s) stmts;
  let entry =
    match Hashtbl.find_opt labels !entry_name with
    | Some (Text, off) -> off
    | Some (Data, _) -> err 0 "entry symbol is in .data"
    | None -> 0
  in
  let exports =
    Hashtbl.fold
      (fun n (sec, off) acc ->
        ((n, match sec with Text -> off | Data -> text_len + off) :: acc))
      labels []
  in
  {
    Image.name;
    text = Buffer.to_bytes text;
    data = Buffer.to_bytes data;
    bss_size = 0;
    entry;
    imports = Array.of_list (List.rev ctx.imports);
    exports = List.sort compare exports;
    relocs = List.rev !relocs;
    funcs = List.rev !funcs;
  }
