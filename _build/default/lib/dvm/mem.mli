(** Concrete byte-addressed memory with MMIO hooks.

    Backed by 4 KiB pages allocated on demand. MMIO regions divert
    accesses to device callbacks (byte granularity); everything else is
    plain RAM. This is the memory of the concrete engines (replay, stress
    baseline); the symbolic engine layers its copy-on-write store on top
    of a snapshot of this. *)

type t

val create : unit -> t

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : t -> int -> int -> unit

val load_bytes : t -> int -> bytes -> unit
val read_bytes : t -> int -> int -> bytes

val read_cstring : t -> int -> string
(** NUL-terminated string at an address (capped at 4096 bytes). *)

val write_cstring : t -> int -> string -> unit

type mmio = {
  mmio_start : int;
  mmio_size : int;
  mmio_read : int -> int;          (** byte offset within region -> byte *)
  mmio_write : int -> int -> unit; (** byte offset, byte value *)
}

val add_mmio : t -> mmio -> unit
val find_mmio : t -> int -> mmio option

val snapshot : t -> t
(** Deep copy of RAM; MMIO regions are shared. *)

val iter_pages : t -> (int -> bytes -> unit) -> unit
(** For crash dumps: iterate (page_base, contents) over allocated pages. *)
