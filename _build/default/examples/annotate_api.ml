(* Writing your own interface annotations (§3.4 of the paper).

   We test a small custom driver that reads a "BurstLength" registry
   parameter and divides by it. With the stock annotation set the bug is
   found (the parameter becomes symbolic and zero is feasible). We then
   show the annotation mechanism itself: a custom annotation that models a
   vendor-specific kernel extension, forking its return into the classes
   "small" and "huge", which exposes a second bug.

     dune exec examples/annotate_api.exe *)

module Expr = Ddt_solver.Expr
module Annot = Ddt_annot.Annot
module Report = Ddt_checkers.Report

(* A vendor-specific kernel API our mini-kernel doesn't know: register it
   first (kernel extensions do exactly this). It concretely returns a
   small DMA window size. *)
let () =
  Ddt_kernel.Kapi.register "VendorQueryDmaWindow"
    (fun _ks m -> m.Ddt_kernel.Mach.set_ret 64)

let driver_source = {|
  const TAG = 0x44454D4F;
  int g_window;
  int chars[8];

  int initialize(void) {
    int cfg;
    int status = NdisOpenConfiguration(&cfg);
    if (status != 0) { return 1; }
    int burst = NdisReadConfiguration(cfg, "BurstLength", 8);
    NdisCloseConfiguration(cfg);

    // BUG 1: a registry value is used as a divisor unchecked.
    int per_burst = 4096 / burst;

    g_window = VendorQueryDmaWindow();
    int buf;
    status = NdisAllocateMemoryWithTag(&buf, 128, TAG);
    if (status != 0) { return 1; }
    // BUG 2: trusts the vendor API to return at most 128.
    *(buf + g_window) = per_burst;
    NdisFreeMemory(buf, 128, 0);
    return 0;
  }

  int driver_entry(void) {
    chars[0] = initialize;
    return NdisMRegisterMiniport(chars);
  }
|}

(* The custom annotation: a concrete-to-symbolic conversion hint for the
   vendor API — its return may be any window size up to 1 MiB. *)
let vendor_annotation =
  Annot.make ~api:"VendorQueryDmaWindow"
    ~post:(fun _ks m ->
      let symb = m.Ddt_kernel.Mach.fresh_symbolic "dma_window" Expr.W32 in
      m.Ddt_kernel.Mach.assume
        (Expr.cmp Expr.Leu symb (Expr.word 0x100000));
      m.Ddt_kernel.Mach.set_ret_expr symb)
    ~doc:"the DMA window size depends on chipset revision; treat as symbolic"
    ()

let run annotations =
  let cfg =
    Ddt_core.Config.make ~driver_name:"demo"
      ~image:(Ddt_minicc.Codegen.compile ~name:"demo" driver_source)
      ~driver_class:Ddt_core.Config.Network
      ~workload:[ Ddt_core.Config.W_initialize ]
      ~annotations ()
  in
  Ddt_core.Ddt.test_driver cfg

let print_bugs r =
  List.iter
    (fun b -> Format.printf "  %a@." Report.pp_bug b)
    r.Ddt_core.Session.r_bugs;
  Format.printf "@."

let () =
  Format.printf "--- stock NDIS annotations only ---@.";
  let stock = run Ddt_annot.Ndis_annotations.set in
  print_bugs stock;

  Format.printf "--- stock + custom VendorQueryDmaWindow annotation ---@.";
  let custom =
    run (Annot.combine Ddt_annot.Ndis_annotations.set [ vendor_annotation ])
  in
  print_bugs custom;

  let count r = List.length r.Ddt_core.Session.r_bugs in
  Format.printf
    "the custom annotation exposed %d additional bug(s) — annotations are \
     one-time effort that pays off across every driver using the API@."
    (count custom - count stock)
