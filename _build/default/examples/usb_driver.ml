(* Testing a USB driver — lifting the paper's §6.1 limitation.

   USB devices have no memory-mapped registers: all device output arrives
   through URB transfers. That makes "fully symbolic hardware" a property
   of the bus API — every IN transfer returns fresh symbolic bytes and a
   symbolic actual-length — and DDT needs no VMM extension at all. The
   bundled USB NIC driver trusts the device-reported transfer length and
   races its completion handler against initialization; both bugs fall
   out of the ordinary workload.

     dune exec examples/usb_driver.exe *)

module Report = Ddt_checkers.Report

let run image =
  let cfg =
    Ddt_core.Config.make ~driver_name:"USB NIC" ~image
      ~driver_class:Ddt_core.Config.Network ()
  in
  Ddt_core.Ddt.test_driver cfg

let () =
  Format.printf "--- buggy USB NIC ---@.";
  let r = run (Ddt_drivers.Usb_nic.image ()) in
  Format.printf "%a@." Ddt_core.Ddt.pp_report r;
  List.iter
    (fun b ->
      Format.printf "%a@." Ddt_checkers.Diagnose.pp
        (Ddt_checkers.Diagnose.analyze b))
    r.Ddt_core.Session.r_bugs;

  Format.printf "--- fixed USB NIC ---@.";
  let rf = run (Ddt_drivers.Usb_nic.fixed_image ()) in
  Format.printf "%a@." Ddt_core.Ddt.pp_report rf;

  (* The corruption depends only on device-controlled data: with a spec
     that bounds the interrupt endpoint's actual-length to the slot size,
     the diagnosis attributes it to a malfunctioning device. *)
  let is_corruption b =
    String.length b.Report.b_key >= 4 && String.sub b.Report.b_key 0 4 = "mem:"
  in
  match List.find_opt is_corruption r.Ddt_core.Session.r_bugs with
  | None -> ()
  | Some bug ->
      let spec =
        { Ddt_checkers.Diagnose.ds_registers = [ ("usb_ep1_len", 0, 63) ];
          ds_default = (0, 255) }
      in
      let a = Ddt_checkers.Diagnose.analyze ~spec bug in
      Format.printf
        "under a spec where endpoint 1 never reports more than 63 bytes:@.%a"
        Ddt_checkers.Diagnose.pp a
