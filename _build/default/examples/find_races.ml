(* Symbolic interrupts in action (§3.3 of the paper).

   The Ensoniq AudioPCI-alike driver has two windows in which a device
   interrupt crashes the machine: during initialization (before its DMA
   buffer exists) and while starting playback (before the current-buffer
   pointer is published). Classic stress testing never fires an interrupt
   at exactly those instants; symbolic interrupts fork execution at every
   kernel/driver boundary crossing and land in both windows.

     dune exec examples/find_races.exe *)

module Report = Ddt_checkers.Report

let run ~inject =
  let exec_config =
    { Ddt_symexec.Exec.default_config with
      Ddt_symexec.Exec.inject_interrupts = inject }
  in
  let cfg =
    Ddt_core.Config.make ~driver_name:"Ensoniq AudioPCI"
      ~image:(Ddt_drivers.Audiopci.image ())
      ~driver_class:Ddt_core.Config.Audio
      ~descriptor:Ddt_drivers.Audiopci.descriptor
      ~registry:Ddt_drivers.Audiopci.registry ~exec_config ()
  in
  Ddt_core.Ddt.test_driver cfg

let races r =
  List.filter
    (fun b -> b.Report.b_kind = Report.Race_condition)
    r.Ddt_core.Session.r_bugs

let () =
  Format.printf "--- without symbolic interrupts ---@.";
  let without = run ~inject:false in
  Format.printf "race conditions found: %d@.@." (List.length (races without));

  Format.printf "--- with symbolic interrupts ---@.";
  let with_si = run ~inject:true in
  let rs = races with_si in
  Format.printf "race conditions found: %d@." (List.length rs);
  List.iter (fun b -> Format.printf "  %a@." Report.pp_bug b) rs;

  (* Show where the interrupt was injected on the first racing path. *)
  match rs with
  | [] -> ()
  | b :: _ ->
      Format.printf "@.injection points on the failing path:@.";
      List.iter
        (fun e ->
          match e with
          | Ddt_trace.Event.E_interrupt { site; phase } ->
              Format.printf "  interrupt at %s (%s)@." site phase
          | _ -> ())
        (List.rev b.Report.b_events)
