examples/usb_driver.mli:
