examples/quickstart.ml: Bytes Ddt_core Ddt_drivers Ddt_dvm Format
