examples/annotate_api.ml: Ddt_annot Ddt_checkers Ddt_core Ddt_kernel Ddt_minicc Ddt_solver Format List
