examples/compare_tools.ml: Ddt_baseline Ddt_checkers Ddt_core Ddt_drivers Format List Printf String Unix
