examples/find_races.ml: Ddt_checkers Ddt_core Ddt_drivers Ddt_symexec Ddt_trace Format List
