examples/usb_driver.ml: Ddt_checkers Ddt_core Ddt_drivers Format List String
