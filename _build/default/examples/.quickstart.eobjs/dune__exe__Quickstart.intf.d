examples/quickstart.mli:
