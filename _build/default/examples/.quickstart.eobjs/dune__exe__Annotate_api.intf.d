examples/annotate_api.mli:
