examples/find_races.mli:
