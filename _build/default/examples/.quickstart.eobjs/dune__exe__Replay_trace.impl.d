examples/replay_trace.ml: Ddt_checkers Ddt_core Ddt_drivers Ddt_trace Format List
