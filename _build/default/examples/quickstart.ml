(* Quickstart: the "Test Now" button.

   Take a driver binary you do not have the source of — here the bundled
   RTL8029-alike NIC driver, loaded from its serialized DXE form to make
   the point — and test it against a fully symbolic device. Run with:

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Obtain the driver binary. DDT never sees source: we serialize the
     image to its on-disk form and load it back, as a consumer would. *)
  let binary = Ddt_dvm.Image.to_bytes (Ddt_drivers.Rtl8029.image ()) in
  Format.printf "driver binary: %d bytes@." (Bytes.length binary);
  let image = Ddt_dvm.Image.of_bytes binary in
  let stats = Ddt_dvm.Image.stats image in
  Format.printf
    "  code segment %d bytes, %d functions, %d kernel imports@.@."
    stats.Ddt_dvm.Image.code_size stats.Ddt_dvm.Image.num_functions
    stats.Ddt_dvm.Image.num_kernel_imports;

  (* 2. Describe the fake device (vendor/device id + resource sizes — the
     "shell" of §4.2) and the registry the driver will read. *)
  let cfg =
    Ddt_core.Config.make ~driver_name:"RTL8029" ~image
      ~driver_class:Ddt_core.Config.Network
      ~descriptor:Ddt_drivers.Rtl8029.descriptor
      ~registry:Ddt_drivers.Rtl8029.registry ()
  in

  (* 3. Press the button. *)
  let result = Ddt_core.Ddt.test_driver cfg in
  Format.printf "%a@." Ddt_core.Ddt.pp_report result;

  (* 4. Each bug comes with executable evidence. *)
  match result.Ddt_core.Session.r_bugs with
  | [] -> ()
  | bug :: _ ->
      Format.printf "evidence for the first bug:@.%a@."
        Ddt_core.Ddt.pp_bug_detail bug
