(* DDT vs the other two tool families (§5.1 of the paper).

   Runs the three approaches on the same binaries:
   - DDT (selective symbolic execution + checkers),
   - the Driver-Verifier-style concrete stress baseline,
   - the SDV-style static analyzer,
   over the SDV sample driver (8 seeded API-rule bugs) and the five
   synthetic one-bug drivers, then prints the §5.1 comparison.

     dune exec examples/compare_tools.exe *)

module Report = Ddt_checkers.Report
module Sdv = Ddt_drivers.Sdv_sample

let ddt_cfg image =
  Ddt_core.Config.make ~driver_name:"sdv_sample" ~image
    ~driver_class:Ddt_core.Config.Network ~descriptor:Sdv.descriptor
    ~registry:Sdv.registry ()

let () =
  let image = Sdv.image () in

  Format.printf "=== SDV sample driver (%d seeded bugs) ===@.@."
    Sdv.seeded_bug_count;

  let t0 = Unix.gettimeofday () in
  let ddt = Ddt_core.Ddt.test_driver (ddt_cfg image) in
  let ddt_time = Unix.gettimeofday () -. t0 in
  Format.printf "DDT: %d findings in %.2fs@."
    (List.length ddt.Ddt_core.Session.r_bugs) ddt_time;
  List.iter
    (fun b -> Format.printf "  %a@." Report.pp_bug b)
    ddt.Ddt_core.Session.r_bugs;

  let static = Ddt_baseline.Static.analyze ~name:"sdv_sample" image in
  Format.printf "@.%a" Ddt_baseline.Static.pp static;

  let stress = Ddt_baseline.Stress.run ~runs:5 (ddt_cfg image) in
  Format.printf "@.stress: %d findings in %d runs (%.2fs)@.@."
    (List.length stress.Ddt_baseline.Stress.s_bugs)
    stress.Ddt_baseline.Stress.s_runs stress.Ddt_baseline.Stress.s_wall_time;

  Format.printf "=== synthetic one-bug drivers ===@.@.";
  Format.printf "%-20s %-28s %s@." "bug" "DDT" "static baseline";
  List.iter
    (fun (name, img) ->
      let d = Ddt_core.Ddt.test_driver (ddt_cfg img) in
      let s = Ddt_baseline.Static.analyze ~name img in
      Format.printf "%-20s %-28s %s@." name
        (Printf.sprintf "%d finding(s)"
           (List.length d.Ddt_core.Session.r_bugs))
        (String.concat ", "
           (match s.Ddt_baseline.Static.st_findings with
            | [] -> [ "missed" ]
            | fs ->
                List.map (fun f -> f.Ddt_baseline.Absint.fi_rule) fs)))
    (Sdv.synthetic_images ());
  Format.printf
    "@.(the paper's shape: the static tool misses the interprocedural lock \
     bugs,@. finds the locally-evident two, and reports one false positive \
     on correct@. conditional locking; DDT finds all five with none)@."
