(* Replaying a bug from its trace (§3.5 of the paper).

   DDT's reports are executable evidence: every bug carries the concrete
   inputs (registry values, device-register reads, packet bytes), the
   annotation fork decisions, and the interrupt injection points of its
   failing path. This example finds a bug, serializes its replay script —
   the form you would ship with a bug report — and re-executes the
   session pinned to that script, reproducing the same bug.

     dune exec examples/replay_trace.exe *)

module Report = Ddt_checkers.Report
module Replay = Ddt_trace.Replay

let base_cfg ?replay () =
  Ddt_core.Config.make ~driver_name:"RTL8029"
    ~image:(Ddt_drivers.Rtl8029.image ())
    ~driver_class:Ddt_core.Config.Network
    ~descriptor:Ddt_drivers.Rtl8029.descriptor
    ~registry:Ddt_drivers.Rtl8029.registry ?replay ()

let () =
  (* 1. Find bugs. *)
  let r = Ddt_core.Ddt.test_driver (base_cfg ()) in
  let bug =
    match
      List.find_opt
        (fun b -> b.Report.b_kind = Report.Race_condition)
        r.Ddt_core.Session.r_bugs
    with
    | Some b -> b
    | None -> failwith "expected the timer race to be found"
  in
  Format.printf "found: %a@.@." Report.pp_bug bug;

  (* 2. The replay script: concrete inputs + system events (the paper's
     "inputs derived from the symbolic state by solving the corresponding
     path constraints"). Serialize and parse it back, as shipping evidence
     would. *)
  let script = Replay.of_string (Replay.to_string bug.Report.b_replay) in
  Format.printf "%a@." Replay.pp script;

  (* 3. Re-execute with every input pinned. The same bug must reappear. *)
  let replayed = Ddt_core.Ddt.test_driver (base_cfg ~replay:script ()) in
  let reproduced =
    List.exists
      (fun b -> b.Report.b_key = bug.Report.b_key)
      replayed.Ddt_core.Session.r_bugs
  in
  Format.printf "reproduced under replay: %b@." reproduced;
  if not reproduced then exit 1
