(* Tests for ddt_baseline: CFG recovery from binaries, the abstract
   interpreter's rules (including its engineered blind spots), and the
   stress baseline's inability to find the corpus bugs. *)

open Ddt_baseline

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile src = Ddt_minicc.Codegen.compile ~name:"t" src

let analyze src = Static.analyze ~name:"t" (compile src)

let rules r =
  List.map (fun f -> f.Absint.fi_rule) r.Static.st_findings
  |> List.sort compare

(* --- CFG recovery ----------------------------------------------------------- *)

let test_cfg_functions_and_tokens () =
  let img = compile {|
    const LOCK_OFF = 8;
    int g_ctx;
    int f(void) {
      NdisAcquireSpinLock(g_ctx + LOCK_OFF);
      NdisReleaseSpinLock(g_ctx + LOCK_OFF);
      return 0;
    }
    int driver_entry(void) { return f(); }
  |} in
  let funcs = Cfg.build img in
  check_int "two functions" 2 (List.length funcs);
  let f = List.find (fun f -> f.Cfg.f_name = "f") funcs in
  let kcalls =
    Hashtbl.fold (fun _ b acc -> b.Cfg.b_kcalls @ acc) f.Cfg.f_blocks []
  in
  check_int "two kcalls" 2 (List.length kcalls);
  List.iter
    (fun kc ->
      check_bool "token recovered as ctx offset" true
        (kc.Cfg.kc_arg0 = Cfg.Tok_offset 8))
    kcalls

(* The baseline is deliberately blind to indirect calls: [callr] is
   treated as a plain instruction — fall-through successor, no callee
   edge, no recovered target set. This is the strawman behavior the paper
   leans on; the staticx ICFG resolves the same site conservatively. *)
let test_cfg_indirect_branch_blindness () =
  let img =
    Ddt_dvm.Asm.assemble ~name:"t" {|
      .entry driver_entry
      .func driver_entry
          push fp
          mov fp, sp
          lea r1, helper
          callr r1
          mov sp, fp
          pop fp
          ret
      .func helper
      helper:
          movi r0, 7
          ret
    |}
  in
  let funcs = Cfg.build img in
  let de = List.find (fun f -> f.Cfg.f_name = "driver_entry") funcs in
  let helper = List.find (fun f -> f.Cfg.f_name = "helper") funcs in
  let callr_block =
    Hashtbl.fold
      (fun _ b acc ->
        if
          List.exists
            (fun (_, i) -> match i with Ddt_dvm.Isa.Callr _ -> true | _ -> false)
            b.Cfg.b_instrs
        then Some b
        else acc)
      de.Cfg.f_blocks None
  in
  match callr_block with
  | None -> Alcotest.fail "no block contains the callr"
  | Some b ->
      check_bool "no edge to the indirect callee" true
        (not (List.mem helper.Cfg.f_start b.Cfg.b_succs));
      check_bool "callr is not an exit" true (not b.Cfg.b_is_exit)

(* A block that runs off the end of its function into the next one is
   treated as an exit (succs cut at the function extent) — the baseline
   never follows execution across a function boundary. *)
let test_cfg_fallthrough_into_next_function () =
  let img =
    Ddt_dvm.Asm.assemble ~name:"t" {|
      .entry driver_entry
      .func driver_entry
          movi r0, 1
          movi r1, 2
      .func next_fn
      next_fn:
          movi r0, 3
          ret
    |}
  in
  let funcs = Cfg.build img in
  let de = List.find (fun f -> f.Cfg.f_name = "driver_entry") funcs in
  let entry_block = Hashtbl.find de.Cfg.f_blocks de.Cfg.f_entry in
  check_int "fall-through cut at function extent" 0
    (List.length entry_block.Cfg.b_succs);
  check_bool "treated as exit" true entry_block.Cfg.b_is_exit

let test_cfg_branch_successors () =
  let img = compile {|
    int driver_entry(int x) {
      if (x) { return 1; }
      return 2;
    }
  |} in
  let funcs = Cfg.build img in
  let f = List.hd funcs in
  let n_blocks = Hashtbl.length f.Cfg.f_blocks in
  check_bool "at least three blocks" true (n_blocks >= 3);
  let has_branching_block =
    Hashtbl.fold
      (fun _ b acc -> acc || List.length b.Cfg.b_succs = 2)
      f.Cfg.f_blocks false
  in
  check_bool "conditional produces two successors" true has_branching_block

(* --- abstract interpretation rules ------------------------------------------ *)

let lock_harness body = Printf.sprintf {|
  const L1 = 8;
  const L2 = 24;
  int g_ctx;
  int f(int flag) {
%s
    return 0;
  }
  int driver_entry(void) { return f(1); }
|} body

let test_absint_double_acquire () =
  let r = analyze (lock_harness {|
    NdisAcquireSpinLock(g_ctx + L1);
    NdisAcquireSpinLock(g_ctx + L1);
    NdisReleaseSpinLock(g_ctx + L1);
  |}) in
  check_bool "double-acquire" true (List.mem "double-acquire" (rules r))

let test_absint_wrong_variant () =
  let r = analyze (lock_harness {|
    NdisAcquireSpinLock(g_ctx + L1);
    NdisDprReleaseSpinLock(g_ctx + L1);
  |}) in
  check_bool "wrong-variant" true (List.mem "wrong-variant" (rules r))

let test_absint_out_of_order () =
  let r = analyze (lock_harness {|
    NdisAcquireSpinLock(g_ctx + L1);
    NdisAcquireSpinLock(g_ctx + L2);
    NdisReleaseSpinLock(g_ctx + L1);
    NdisReleaseSpinLock(g_ctx + L2);
  |}) in
  check_bool "out-of-order" true (List.mem "out-of-order" (rules r))

let test_absint_clean_balanced () =
  let r = analyze (lock_harness {|
    NdisAcquireSpinLock(g_ctx + L1);
    NdisAcquireSpinLock(g_ctx + L2);
    NdisReleaseSpinLock(g_ctx + L2);
    NdisReleaseSpinLock(g_ctx + L1);
  |}) in
  check_int "no findings on balanced locking" 0 (List.length (rules r))

let test_absint_forgotten_release () =
  let r = analyze (lock_harness {|
    NdisAcquireSpinLock(g_ctx + L1);
    if (flag == 0) { return 1; }
    NdisReleaseSpinLock(g_ctx + L1);
  |}) in
  check_bool "forgotten-release" true
    (List.mem "forgotten-release" (rules r))

let test_absint_conditional_fp () =
  (* CORRECT code: acquire and release guarded by the same condition.
     The path-insensitive analysis must (by design) misreport it — this
     is the engineered false positive of the §5.1 comparison. *)
  let r = analyze (lock_harness {|
    if (flag != 0) { NdisAcquireSpinLock(g_ctx + L1); }
    if (flag != 0) { NdisReleaseSpinLock(g_ctx + L1); }
  |}) in
  check_bool "the engineered FP is present" true
    (List.mem "forgotten-release" (rules r))

let test_absint_interprocedural_blindness () =
  (* A deadlock split across helpers must be missed (no summaries). *)
  let r = analyze {|
    const L1 = 8;
    int g_ctx;
    int lock_it(void) { NdisAcquireSpinLock(g_ctx + L1); return 0; }
    int f(void) { lock_it(); lock_it(); return 0; }
    int driver_entry(void) { return f(); }
  |} in
  check_int "interprocedural deadlock missed" 0 (List.length (rules r))

let test_absint_wrong_irql () =
  let r = analyze (lock_harness {|
    int cfg;
    NdisAcquireSpinLock(g_ctx + L1);
    NdisOpenConfiguration(&cfg);
    NdisCloseConfiguration(cfg);
    NdisReleaseSpinLock(g_ctx + L1);
  |}) in
  check_bool "wrong-irql" true (List.mem "wrong-irql" (rules r))

let test_absint_double_free () =
  let r = analyze {|
    const TAG = 1;
    int f(void) {
      int p;
      int status = NdisAllocateMemoryWithTag(&p, 32, TAG);
      if (status != 0) { return 1; }
      NdisFreeMemory(p, 32, 0);
      NdisFreeMemory(p, 32, 0);
      return 0;
    }
    int driver_entry(void) { return f(); }
  |} in
  check_bool "double-free" true (List.mem "double-free" (rules r))

(* --- full static front end ---------------------------------------------------- *)

let test_static_on_sample () =
  let r =
    Static.analyze ~name:"sdv" (Ddt_drivers.Sdv_sample.image ())
  in
  check_int "8 findings on the 8-bug sample" 8
    (List.length r.Static.st_findings);
  let r_fixed =
    Static.analyze ~name:"sdv-fixed" (Ddt_drivers.Sdv_sample.fixed_image ())
  in
  check_int "0 findings on the fixed sample" 0
    (List.length r_fixed.Static.st_findings)

(* --- stress baseline ------------------------------------------------------------ *)

let test_stress_finds_nothing_on_rtl8029 () =
  let entry = Ddt_drivers.Corpus.find "rtl8029" in
  let r = Stress.run ~runs:6 (Ddt_drivers.Corpus.config entry) in
  List.iter
    (fun b ->
      Format.printf "stress unexpectedly found: %a@."
        Ddt_checkers.Report.pp_bug b)
    r.Stress.s_bugs;
  check_int "stress misses all rtl8029 bugs" 0 (List.length r.Stress.s_bugs)

let test_stress_is_concrete () =
  (* No forking: a stress run creates exactly one state per invocation. *)
  let entry = Ddt_drivers.Corpus.find "pcnet" in
  let r = Stress.run ~runs:2 (Ddt_drivers.Corpus.config entry) in
  check_int "no bugs" 0 (List.length r.Stress.s_bugs);
  check_bool "fast" true (r.Stress.s_wall_time < 30.0)

let () =
  Alcotest.run "ddt_baseline"
    [ ("cfg",
       [ Alcotest.test_case "functions and tokens" `Quick
           test_cfg_functions_and_tokens;
         Alcotest.test_case "branch successors" `Quick
           test_cfg_branch_successors;
         Alcotest.test_case "indirect-call blindness (by design)" `Quick
           test_cfg_indirect_branch_blindness;
         Alcotest.test_case "fall-through into next function (by design)"
           `Quick test_cfg_fallthrough_into_next_function ]);
      ("absint",
       [ Alcotest.test_case "double acquire" `Quick test_absint_double_acquire;
         Alcotest.test_case "wrong variant" `Quick test_absint_wrong_variant;
         Alcotest.test_case "out of order" `Quick test_absint_out_of_order;
         Alcotest.test_case "balanced is clean" `Quick
           test_absint_clean_balanced;
         Alcotest.test_case "forgotten release" `Quick
           test_absint_forgotten_release;
         Alcotest.test_case "conditional FP (by design)" `Quick
           test_absint_conditional_fp;
         Alcotest.test_case "interprocedural blindness (by design)" `Quick
           test_absint_interprocedural_blindness;
         Alcotest.test_case "wrong irql" `Quick test_absint_wrong_irql;
         Alcotest.test_case "double free" `Quick test_absint_double_free ]);
      ("static",
       [ Alcotest.test_case "sample driver 8/0" `Quick test_static_on_sample ]);
      ("stress",
       [ Alcotest.test_case "misses rtl8029 bugs" `Quick
           test_stress_finds_nothing_on_rtl8029;
         Alcotest.test_case "concrete and fast" `Quick test_stress_is_concrete ]) ]
