(* Tests for ddt_staticx: VSA target classification, ICFG construction
   (recursive descent, dead-code exclusion, indirect-call resolution),
   the static finding rules, the distance-to-uncovered map, the versioned
   JSON report schema, and the guidance-changes-nothing property of the
   min-dist strategy. *)

module Isa = Ddt_dvm.Isa
module Asm = Ddt_dvm.Asm
module Disasm = Ddt_dvm.Disasm
module Vsa = Ddt_staticx.Vsa
module Icfg = Ddt_staticx.Icfg
module Distmap = Ddt_staticx.Distmap
module Sfind = Ddt_staticx.Sfind
module Corpus = Ddt_drivers.Corpus
module Session = Ddt_core.Session
module Config = Ddt_core.Config
module Report = Ddt_checkers.Report
module Exec = Ddt_symexec.Exec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile src = Ddt_minicc.Codegen.compile ~name:"t" src
let assemble src = Asm.assemble ~name:"t" src

(* --- VSA ------------------------------------------------------------------- *)

let test_vsa_classification () =
  let img = assemble {|
      .entry driver_entry
      .func driver_entry
          lea r1, taken        ; address-taken via lea
          jmp skip             ; control-flow reloc, not address-taken
      taken:
          movi r0, 1
      skip:
          ret
      .func handler
      handler:
          movi r0, 2
          ret
      .data
      tbl: .word handler       ; address-taken via data word
    |}
  in
  let v = Vsa.analyze img in
  let de = Disasm.disassemble img in
  let off_of_label target =
    (* find the instruction offsets by shape *)
    List.filter_map
      (fun (pos, i) -> if i = target then Some pos else None)
      de
  in
  let taken = off_of_label (Isa.Movi (0, 1)) in
  let handler = off_of_label (Isa.Movi (0, 2)) in
  check_int "one lea target" 1 (List.length taken);
  check_int "one handler entry" 1 (List.length handler);
  check_bool "lea target is address-taken" true
    (List.mem (List.hd taken) v.Vsa.code_targets);
  check_bool "data word target is address-taken" true
    (List.mem (List.hd handler) v.Vsa.code_targets);
  check_int "one handler-table slot" 1 (List.length v.Vsa.data_code_refs);
  (* the jmp's immediate is a reloc but must not be address-taken *)
  check_bool "jmp target not address-taken" true
    (not
       (List.exists
          (fun t -> List.mem t v.Vsa.code_targets)
          (List.filter_map
             (fun (pos, i) ->
               match i with Isa.Jmp t -> Some t | _ -> ignore pos; None)
             de)))

(* --- ICFG ------------------------------------------------------------------ *)

let test_universe_subset_of_linear_sweep () =
  let img = compile {|
    int helper(int x) { if (x) { return x + 1; } return 0; }
    int driver_entry(int a) {
      int i;
      int acc = 0;
      for (i = 0; i < 4; i = i + 1) { acc = acc + helper(i); }
      return acc;
    }
  |}
  in
  let icfg = Icfg.build img in
  let sweep = Disasm.basic_block_starts img in
  check_bool "nonzero universe" true (icfg.Icfg.universe <> []);
  List.iter
    (fun b ->
      check_bool "universe leader is a linear-sweep leader" true
        (List.mem b sweep))
    icfg.Icfg.universe

let test_dead_code_excluded_and_reported () =
  let img = assemble {|
      .entry driver_entry
      .func driver_entry
          jmp live
          movi r0, 1           ; dead: two slots, skipped by every path
          movi r0, 2
      live:
          ret
    |}
  in
  let icfg = Icfg.build img in
  (* the two dead slots are at offsets 8 and 16 *)
  check_bool "dead slot not in universe" true
    (not (List.mem 8 icfg.Icfg.universe));
  check_bool "gap covers both dead slots" true
    (List.mem (8, 16) icfg.Icfg.gaps);
  let fs = Sfind.analyze icfg in
  check_bool "unreachable-code finding reported" true
    (List.exists
       (fun f -> f.Sfind.f_rule = "unreachable-code" && f.Sfind.f_pos = 8)
       fs)

let test_compiler_fallback_not_flagged () =
  (* one dead slot falling into reached code: the Mini-C default-return
     idiom — excluded from the universe but not reported as a finding *)
  let img = assemble {|
      .entry driver_entry
      .func driver_entry
          jmp live
          movi r0, 1
      live:
          ret
    |}
  in
  let icfg = Icfg.build img in
  check_bool "dead slot not in universe" true
    (not (List.mem 8 icfg.Icfg.universe));
  check_bool "gap still recorded" true (List.mem (8, 8) icfg.Icfg.gaps);
  check_int "no findings" 0 (List.length (Sfind.analyze icfg))

let test_indirect_call_resolved () =
  let img = assemble {|
      .entry driver_entry
      .func driver_entry
          push fp
          mov fp, sp
          lea r1, helper
          callr r1
          mov sp, fp
          pop fp
          ret
      helper:
          movi r0, 7
          ret
    |}
  in
  let icfg = Icfg.build img in
  let helper_entry =
    (* the lea's target: the only address-taken code offset *)
    match icfg.Icfg.vsa.Vsa.code_targets with
    | [ t ] -> t
    | l -> Alcotest.failf "expected 1 code target, got %d" (List.length l)
  in
  (* the callr block must list helper in its conservative target set *)
  let found =
    Hashtbl.fold
      (fun _ b acc ->
        acc
        || match b.Icfg.bb_term with
           | Icfg.T_callr targets -> List.mem helper_entry targets
           | _ -> false)
      icfg.Icfg.blocks false
  in
  check_bool "callr resolved to the address-taken helper" true found;
  (* helper's blocks are in the universe even though nothing names them *)
  check_bool "helper body reachable" true
    (List.mem helper_entry icfg.Icfg.universe)

let test_icfg_deterministic () =
  let entry = Corpus.find "rtl8029" in
  let img = entry.Corpus.image () in
  let a = Icfg.build img and b = Icfg.build img in
  check_bool "universe equal" true (a.Icfg.universe = b.Icfg.universe);
  check_bool "gaps equal" true (a.Icfg.gaps = b.Icfg.gaps);
  check_bool "seeds equal" true (a.Icfg.seeds = b.Icfg.seeds);
  check_bool "call graph equal" true (a.Icfg.call_graph = b.Icfg.call_graph);
  check_bool "edges equal" true (Icfg.edges a = Icfg.edges b);
  check_bool "findings equal" true (Sfind.analyze a = Sfind.analyze b);
  let render t =
    Format.asprintf "%a" Icfg.pp t
  in
  check_bool "pp byte-identical" true (render a = render b)

(* --- static findings ------------------------------------------------------- *)

let test_stack_imbalance () =
  let img = assemble {|
      .entry driver_entry
      .func driver_entry
          push r1              ; never popped
          ret
    |}
  in
  let fs = Sfind.analyze (Icfg.build img) in
  check_bool "imbalance reported" true
    (List.exists (fun f -> f.Sfind.f_rule = "stack-imbalance") fs)

let test_balanced_function_clean () =
  let img = assemble {|
      .entry driver_entry
      .func driver_entry
          push fp
          mov fp, sp
          sub sp, sp, 8
          mov sp, fp
          pop fp
          ret
    |}
  in
  let fs = Sfind.analyze (Icfg.build img) in
  check_int "no findings on balanced code" 0 (List.length fs)

let test_const_arg_contract () =
  let img = assemble {|
      .entry driver_entry
      .func driver_entry
          push fp
          mov fp, sp
          movi r1, 0
          push r1              ; arg2: tag = 0 (violates tag != 0)
          movi r2, 0
          push r2              ; arg1: size = 0 (violates size > 0)
          push r0              ; arg0: out pointer
          kcall NdisAllocateMemoryWithTag
          add sp, sp, 12
          mov sp, fp
          pop fp
          ret
    |}
  in
  let contracts = Ddt_annot.Ndis_annotations.contracts in
  let fs = Sfind.analyze ~contracts (Icfg.build img) in
  let hits =
    List.filter (fun f -> f.Sfind.f_rule = "const-arg-contract") fs
  in
  check_int "both violations caught" 2 (List.length hits)

let test_const_arg_clean_when_ok () =
  let img = assemble {|
      .entry driver_entry
      .func driver_entry
          push fp
          mov fp, sp
          movi r1, 0x4464
          push r1              ; tag nonzero
          movi r2, 64
          push r2              ; size positive
          push r0
          kcall NdisAllocateMemoryWithTag
          add sp, sp, 12
          mov sp, fp
          pop fp
          ret
    |}
  in
  let contracts = Ddt_annot.Ndis_annotations.contracts in
  let fs = Sfind.analyze ~contracts (Icfg.build img) in
  check_int "no findings" 0
    (List.length (List.filter (fun f -> f.Sfind.f_rule = "const-arg-contract") fs))

(* The join-over-predecessors pass: a constant materialized in one
   block and pushed as a kcall argument in a successor block is still a
   must-violation. *)
let test_const_arg_across_blocks () =
  let img = assemble {|
      .entry driver_entry
      .func driver_entry
          push fp
          mov fp, sp
          movi r1, 0           ; tag = 0, materialized here...
          jmp docall           ; ...block boundary...
      docall:
          push r1              ; ...violation pushed here
          movi r2, 64
          push r2              ; size positive
          push r0
          kcall NdisAllocateMemoryWithTag
          add sp, sp, 12
          mov sp, fp
          pop fp
          ret
    |}
  in
  let contracts = Ddt_annot.Ndis_annotations.contracts in
  let fs = Sfind.analyze ~contracts (Icfg.build img) in
  check_int "cross-block constant caught" 1
    (List.length (List.filter (fun f -> f.Sfind.f_rule = "const-arg-contract") fs))

(* Must-join bias: when predecessors disagree on the value, the merge
   is Top and no finding fires, even though one path violates. *)
let test_const_arg_join_disagreement_clean () =
  let img = assemble {|
      .entry driver_entry
      .func driver_entry
          push fp
          mov fp, sp
          jz r0, zero_tag
          movi r1, 0x4464      ; this path is in contract
          jmp docall
      zero_tag:
          movi r1, 0           ; this path violates
      docall:
          push r1              ; join is Top: may-violation, not reported
          movi r2, 64
          push r2
          push r0
          kcall NdisAllocateMemoryWithTag
          add sp, sp, 12
          mov sp, fp
          pop fp
          ret
    |}
  in
  let contracts = Ddt_annot.Ndis_annotations.contracts in
  let fs = Sfind.analyze ~contracts (Icfg.build img) in
  check_int "no finding at the merge" 0
    (List.length (List.filter (fun f -> f.Sfind.f_rule = "const-arg-contract") fs))

let test_corpus_statically_clean () =
  List.iter
    (fun e ->
      let icfg = Icfg.build (e.Corpus.image ()) in
      let contracts =
        match e.Corpus.driver_class with
        | Config.Network -> Ddt_annot.Ndis_annotations.contracts
        | Config.Audio -> Ddt_annot.Portcls_annotations.contracts
      in
      check_bool (e.Corpus.short ^ " nonzero universe") true
        (icfg.Icfg.universe <> []);
      check_int (e.Corpus.short ^ " clean") 0
        (List.length (Sfind.analyze ~contracts icfg)))
    Corpus.all

(* --- interprocedural lockset / IRQL / race rules ---------------------------- *)

let class_annot = function
  | Config.Network ->
      (Ddt_annot.Ndis_annotations.contracts, Ddt_annot.Ndis_annotations.model)
  | Config.Audio ->
      ( Ddt_annot.Portcls_annotations.contracts,
        Ddt_annot.Portcls_annotations.model )

let interproc ?rules ~cls img =
  let contracts, model = class_annot cls in
  List.filter
    (fun f ->
      List.exists
        (fun p -> String.starts_with ~prefix:p f.Sfind.f_rule)
        [ "lock-"; "irql-"; "race-" ])
    (Sfind.analyze ~contracts ~model ?rules (Icfg.build img))

let rules_of fs = List.sort_uniq compare (List.map (fun f -> f.Sfind.f_rule) fs)

let test_sdv_lockirql_rules () =
  let fs = interproc ~cls:Config.Network (Ddt_drivers.Sdv_sample.image ()) in
  check_int "six lock/IRQL defects flagged" 6 (List.length fs);
  Alcotest.(check (list string))
    "one finding per seeded rule"
    [ "irql-passive-api"; "lock-double-acquire"; "lock-extra-release";
      "lock-forgotten-release"; "lock-out-of-order"; "lock-wrong-variant" ]
    (rules_of fs);
  check_int "fixed sample clean" 0
    (List.length
       (interproc ~cls:Config.Network (Ddt_drivers.Sdv_sample.fixed_image ())))

let test_synthetics_fire_intended_rules () =
  let intended = function
    | "deadlock" -> "lock-double-acquire"
    | "out_of_order" -> "lock-out-of-order"
    | "extra_release" -> "lock-extra-release"
    | "forgotten_release" -> "lock-forgotten-release"
    | "wrong_irql" -> "irql-passive-api"
    | n -> Alcotest.failf "unknown synthetic %s" n
  in
  List.iter
    (fun (name, img) ->
      let fs = interproc ~cls:Config.Network img in
      check_bool
        (Printf.sprintf "%s fires %s" name (intended name))
        true
        (List.exists (fun f -> f.Sfind.f_rule = intended name) fs))
    (Ddt_drivers.Sdv_sample.synthetic_images ())

(* The seeded corpus: the interprocedural rules statically flag defects
   the intraprocedural baseline misses — the pro100 wrong-variant
   release inside a helper, the rtl8029 timer-before-init race (the
   paper's RTL8029 defect), and the audio drivers' unguarded ISR state
   derefs — while every fixed variant stays clean (the FP gate). *)
let test_corpus_interproc_rules () =
  let expect =
    [ ("pro1000", []); ("pro100", [ "lock-wrong-variant" ]);
      ("ac97", [ "race-unguarded-deref" ]);
      ("audiopci", [ "race-unguarded-deref" ]); ("pcnet", []);
      ("rtl8029", [ "race-unguarded-use" ]); ("deeploop", []) ]
  in
  List.iter
    (fun (e : Corpus.entry) ->
      let fs = interproc ~cls:e.Corpus.driver_class (e.Corpus.image ()) in
      (match List.assoc_opt e.Corpus.short expect with
       | Some rules ->
           Alcotest.(check (list string))
             (e.Corpus.short ^ " buggy rules") rules (rules_of fs)
       | None -> ());
      check_int
        (e.Corpus.short ^ " fixed clean")
        0
        (List.length
           (interproc ~cls:e.Corpus.driver_class (e.Corpus.fixed_image ()))))
    Corpus.all

let test_rules_filter () =
  let img = Ddt_drivers.Sdv_sample.image () in
  let locks = interproc ~rules:[ "lock" ] ~cls:Config.Network img in
  check_int "prefix selects the lock family" 5 (List.length locks);
  check_bool "irql rule filtered out" true
    (not (List.exists (fun f -> f.Sfind.f_rule = "irql-passive-api") locks));
  let one =
    interproc ~rules:[ "lock-double-acquire" ] ~cls:Config.Network img
  in
  Alcotest.(check (list string))
    "exact name selects one rule" [ "lock-double-acquire" ] (rules_of one)

(* --- warning-directed confirmation ----------------------------------------- *)

(* End to end: the rtl8029 static race warning becomes a distance goal,
   the guided session triggers the dynamic timer crash in the same
   function, and the warning comes back [Confirmed] with the witnessing
   bug's key; lock rules without a dynamic witness stay [Unconfirmed]
   and report under the static-unconfirmed severity tier. *)
let test_race_warning_confirmed () =
  let cfg = Corpus.config (Corpus.find "rtl8029") in
  let cfg =
    { cfg with
      Config.exec_config =
        { cfg.Config.exec_config with
          Exec.static_guidance = true;
          strategy = Ddt_symexec.Sched.Min_dist } }
  in
  let r = Session.run cfg in
  let race =
    List.filter
      (fun sf -> sf.Report.sf_rule = "race-unguarded-use")
      r.Session.r_static
  in
  check_int "one race warning" 1 (List.length race);
  match (List.hd race).Report.sf_confirm with
  | Report.Confirmed key ->
      check_bool "confirming bug is in the report" true
        (List.exists (fun b -> b.Report.b_key = key) r.Session.r_bugs);
      check_bool "confirmed severity is plain static" true
        (Report.severity_of_static (List.hd race) = Report.Static)
  | Report.Unconfirmed -> Alcotest.fail "race warning left unconfirmed"
  | Report.Not_applicable -> Alcotest.fail "race warning not goal-directed"

(* --- distance map ---------------------------------------------------------- *)

let test_distmap_monotone () =
  let img = assemble {|
      .entry driver_entry
      .func driver_entry
          jmp b1
      b1: jmp b2
      b2: ret
    |}
  in
  let icfg = Icfg.build img in
  check_int "three blocks" 3 (List.length icfg.Icfg.universe);
  let dm = Distmap.create icfg in
  check_int "uncovered block is at distance 0" 0 (Distmap.dist dm 0);
  Distmap.note_covered dm 0;
  let d1 = Distmap.dist dm 0 in
  check_bool "distance grows once covered" true (d1 > 0);
  Distmap.note_covered dm 8;
  let d2 = Distmap.dist dm 0 in
  check_bool "monotone" true (d2 >= d1);
  Distmap.note_covered dm 16;
  check_int "all covered -> infinity" Distmap.infinity_dist
    (Distmap.dist dm 0);
  check_int "nothing uncovered left" 0 (List.length (Distmap.uncovered dm))

(* Naive O(n^2) pick-min multi-source Dijkstra over the reversed graph:
   the reference the heap-based [Distmap.recompute] must agree with on
   every corpus driver, at every coverage stage. *)
let reference_dists icfg covered =
  let addrs = Array.of_list icfg.Icfg.universe in
  let n = Array.length addrs in
  let ids = Hashtbl.create (2 * n) in
  Array.iteri (fun i a -> Hashtbl.replace ids a i) addrs;
  let cov = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace cov a ()) covered;
  let radj = Array.make (max 1 n) [] in
  List.iter
    (fun (src, dst, w) ->
      match (Hashtbl.find_opt ids src, Hashtbl.find_opt ids dst) with
      | Some s, Some d -> radj.(d) <- (s, w) :: radj.(d)
      | _ -> ())
    (Icfg.edges icfg);
  let d = Array.make (max 1 n) 0 in
  for i = 0 to n - 1 do
    d.(i) <-
      (if Hashtbl.mem cov addrs.(i) then Distmap.infinity_dist else 0)
  done;
  let settled = Array.make (max 1 n) false in
  let continue_ = ref true in
  while !continue_ do
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if (not settled.(i)) && d.(i) < Distmap.infinity_dist
         && (!best < 0 || d.(i) < d.(!best))
      then best := i
    done;
    match !best with
    | -1 -> continue_ := false
    | u ->
        settled.(u) <- true;
        List.iter
          (fun (p, w) ->
            if (not settled.(p)) && d.(u) + w < d.(p) then d.(p) <- d.(u) + w)
          radj.(u)
  done;
  (addrs, d)

let test_distmap_matches_reference () =
  List.iter
    (fun (e : Corpus.entry) ->
      let icfg = Icfg.build (e.Corpus.image ()) in
      let leaders = icfg.Icfg.universe in
      let check_stage stage covered =
        let dm = Distmap.create icfg in
        List.iter (Distmap.note_covered dm) covered;
        let addrs, ref_d = reference_dists icfg covered in
        Array.iteri
          (fun i a ->
            check_int
              (Printf.sprintf "%s %s dist 0x%x" e.Corpus.short stage a)
              ref_d.(i) (Distmap.dist dm a))
          addrs
      in
      check_stage "fresh" [];
      check_stage "half"
        (List.filteri (fun i _ -> i mod 2 = 0) leaders);
      check_stage "full" leaders)
    Corpus.all

(* --- JSON report schema ---------------------------------------------------- *)

let test_report_json_roundtrip () =
  let module J = Ddt_core.Report_json in
  let s =
    {
      J.j_schema = J.schema_version;
      j_driver = "odd \"name\"\nwith\tescapes\\";
      j_bugs =
        [ { J.jb_kind = "Memory corruption"; jb_key = "k1";
            jb_entry = "send"; jb_pc = 0x1234; jb_message = "oob \"write\"" } ];
      j_static =
        [ { J.js_rule = "stack-imbalance"; js_func = "f"; js_pos = 8;
            js_message = "displaced"; js_severity = "static";
            js_confirm = "n/a"; js_confirmed_by = "" };
          { J.js_rule = "race-unguarded-use"; js_func = "isr"; js_pos = 416;
            js_message = "timer armed early";
            js_severity = "static"; js_confirm = "confirmed";
            js_confirmed_by = "crash:RTL8029:BAD_TIMER_OBJECT:0x4001a8" };
          { J.js_rule = "lock-double-acquire"; js_func = "g"; js_pos = 64;
            js_message = "still held";
            js_severity = "static-unconfirmed"; js_confirm = "unconfirmed";
            js_confirmed_by = "" } ];
      j_total_blocks = 97;
      j_reachable_blocks = 88;
      j_covered_blocks = 80;
      j_covered_reachable = 78;
      j_never_reached = [ 8; 64; 1024 ];
      j_invocations = 12;
      j_finished_states = 40;
      j_paths_to_first_bug = Some 3;
      j_states_dropped = 2;
      j_soft_retired = 1;
      j_incidents =
        [ { J.ji_kind = "worker-crash"; ji_worker = 1; ji_state_id = 7;
            ji_entry = "send"; ji_pc = 0x1240;
            ji_message = "chaos: injected crash";
            ji_replay = "input mmio 0x0 0xff\nchoice irq \"late\"\n" };
          { J.ji_kind = "solver-exhaustion"; ji_worker = 0; ji_state_id = 0;
            ji_entry = ""; ji_pc = 0;
            ji_message = "1 solver budget exhaustion(s)"; ji_replay = "" } ];
      j_dbt_blocks = 5;
      j_dbt_superblocks = 9;
      j_dbt_guard_bails = 3;
      j_dbt_decompiled = 1;
      j_dbt_compiled_steps = 70_000;
      j_total_steps = 100_000;
      j_merged_states = 46;
      j_merge_ites = 424;
      j_merge_forks_avoided = 2_541;
    }
  in
  (match J.of_string (J.to_string s) with
   | Some s' -> check_bool "round-trip equal" true (s = s')
   | None -> Alcotest.fail "parse failed");
  let none = { s with J.j_paths_to_first_bug = None } in
  (match J.of_string (J.to_string none) with
   | Some s' -> check_bool "null option round-trips" true (none = s')
   | None -> Alcotest.fail "parse failed (null)");
  check_bool "schema mismatch rejected" true
    (J.of_string
       (J.to_string { s with J.j_schema = J.schema_version + 1 })
     = None);
  check_bool "garbage rejected" true (J.of_string "{nope" = None)

(* --- guidance end-to-end --------------------------------------------------- *)

let quick_cfg ?(guided = false) short =
  let cfg = Corpus.config (Corpus.find short) in
  let cfg =
    { cfg with Config.max_total_steps = 60_000; plateau_steps = 50_000 }
  in
  if guided then
    { cfg with
      Config.exec_config =
        { cfg.Config.exec_config with
          Exec.static_guidance = true;
          strategy = Ddt_symexec.Sched.Min_dist } }
  else cfg

let bug_keys (r : Session.result) =
  List.sort compare (List.map (fun b -> b.Report.b_key) r.Session.r_bugs)

let test_guidance_changes_no_bugs () =
  let rb = Session.run (quick_cfg "rtl8029") in
  let rg = Session.run (quick_cfg ~guided:true "rtl8029") in
  check_bool "same bug set with guidance on/off" true
    (bug_keys rb = bug_keys rg);
  check_bool "reachable <= linear sweep" true
    (rb.Session.r_reachable_blocks <= rb.Session.r_total_blocks);
  check_bool "covered_reachable <= reachable" true
    (rb.Session.r_covered_reachable <= rb.Session.r_reachable_blocks);
  check_int "never_reached complements covered" rb.Session.r_reachable_blocks
    (rb.Session.r_covered_reachable + List.length rb.Session.r_never_reached)

let test_session_reports_identical_across_jobs () =
  let run jobs =
    let cfg = quick_cfg "rtl8029" in
    let cfg =
      { cfg with
        Config.exec_config =
          { cfg.Config.exec_config with Exec.jobs } }
    in
    Session.run cfg
  in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  check_bool "bug keys identical 1 vs 2 jobs" true (bug_keys r1 = bug_keys r2);
  check_bool "bug keys identical 1 vs 4 jobs" true (bug_keys r1 = bug_keys r4);
  let statics r =
    List.map (fun f -> Report.static_key f) r.Session.r_static
  in
  check_bool "static findings identical across jobs" true
    (statics r1 = statics r2 && statics r1 = statics r4);
  check_bool "universe identical across jobs" true
    (r1.Session.r_reachable_blocks = r2.Session.r_reachable_blocks
     && r1.Session.r_reachable_blocks = r4.Session.r_reachable_blocks)

let () =
  Alcotest.run "ddt_staticx"
    [ ("vsa",
       [ Alcotest.test_case "target classification" `Quick
           test_vsa_classification ]);
      ("icfg",
       [ Alcotest.test_case "universe within linear sweep" `Quick
           test_universe_subset_of_linear_sweep;
         Alcotest.test_case "dead code excluded + reported" `Quick
           test_dead_code_excluded_and_reported;
         Alcotest.test_case "compiler fallback not flagged" `Quick
           test_compiler_fallback_not_flagged;
         Alcotest.test_case "indirect call resolved" `Quick
           test_indirect_call_resolved;
         Alcotest.test_case "deterministic" `Quick test_icfg_deterministic ]);
      ("sfind",
       [ Alcotest.test_case "stack imbalance" `Quick test_stack_imbalance;
         Alcotest.test_case "balanced is clean" `Quick
           test_balanced_function_clean;
         Alcotest.test_case "const-arg contract" `Quick
           test_const_arg_contract;
         Alcotest.test_case "const arg across blocks" `Quick
           test_const_arg_across_blocks;
         Alcotest.test_case "join disagreement is clean" `Quick
           test_const_arg_join_disagreement_clean;
         Alcotest.test_case "in-contract args are clean" `Quick
           test_const_arg_clean_when_ok;
         Alcotest.test_case "corpus statically clean" `Quick
           test_corpus_statically_clean ]);
      ("lockirql",
       [ Alcotest.test_case "sdv sample: six seeded defects" `Quick
           test_sdv_lockirql_rules;
         Alcotest.test_case "synthetics fire intended rules" `Quick
           test_synthetics_fire_intended_rules;
         Alcotest.test_case "corpus rules buggy vs fixed" `Quick
           test_corpus_interproc_rules;
         Alcotest.test_case "rules filter" `Quick test_rules_filter ]);
      ("confirmation",
       [ Alcotest.test_case "rtl8029 race confirmed dynamically" `Quick
           test_race_warning_confirmed ]);
      ("distmap",
       [ Alcotest.test_case "monotone distances" `Quick test_distmap_monotone;
         Alcotest.test_case "heap matches naive reference on corpus" `Quick
           test_distmap_matches_reference ]);
      ("report-json",
       [ Alcotest.test_case "round-trip" `Quick test_report_json_roundtrip ]);
      ("guidance",
       [ Alcotest.test_case "same bugs on/off" `Quick
           test_guidance_changes_no_bugs;
         Alcotest.test_case "identical reports at -j 1/2/4" `Quick
           test_session_reports_identical_across_jobs ]) ]
