(* Tests for ddt_solver: expressions, simplification, intervals, SAT and
   the end-to-end constraint solver. *)

open Ddt_solver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Expr ------------------------------------------------------------ *)

let test_const_fold () =
  let open Expr in
  check_int "add" 7 (match binop Add (word 3) (word 4) with
    | Const (_, v) -> v | _ -> -1);
  check_int "sub wrap" 0xFFFFFFFF
    (match binop Sub (word 0) (word 1) with Const (_, v) -> v | _ -> -1);
  check_int "mul mask" ((0xFFFF * 0x10001) land 0xFFFFFFFF)
    (match binop Mul (word 0xFFFF) (word 0x10001) with
     | Const (_, v) -> v | _ -> -1);
  check_int "divu by zero = all ones" 0xFFFFFFFF
    (match binop Divu (word 42) (word 0) with Const (_, v) -> v | _ -> -1);
  check_int "remu by zero = dividend" 42
    (match binop Remu (word 42) (word 0) with Const (_, v) -> v | _ -> -1)

let test_identities () =
  let open Expr in
  let v = var (fresh_var W32) in
  check_bool "x+0" true (equal (binop Add v (word 0)) v);
  check_bool "x*1" true (equal (binop Mul v (word 1)) v);
  check_bool "x&0" true (equal (binop And v (word 0)) (word 0));
  check_bool "x^x" true (equal (binop Xor v v) (word 0));
  check_bool "x==x" true (equal (cmp Eq v v) tru);
  check_bool "x<x" true (equal (cmp Ltu v v) fls);
  check_bool "not not" true (equal (not_ (not_ (cmp Eq v (word 5))))
                               (cmp Eq v (word 5)))

let test_not_pushes_into_cmp () =
  let open Expr in
  let v = var (fresh_var W32) in
  check_bool "!(a<b) = b<=a" true
    (equal (not_ (cmp Ltu v (word 9))) (cmp Leu (word 9) v));
  check_bool "!(a==b) = a!=b" true
    (equal (not_ (cmp Eq v (word 9))) (cmp Ne v (word 9)))

let test_extract_concat_roundtrip () =
  let open Expr in
  let v = var (fresh_var W32) in
  let rebuilt =
    concat4 (extract v 3) (extract v 2) (extract v 1) (extract v 0)
  in
  check_bool "concat of extracts folds" true (equal rebuilt v);
  check_int "extract of const" 0xAB
    (match extract (word 0xAB1234CD) 3 with Const (_, x) -> x | _ -> -1)

let test_eval_signed () =
  let open Expr in
  check_int "lts negative" 1
    (eval_cmp Lts W32 0xFFFFFFFF 0 (* -1 < 0 signed *));
  check_int "ltu same values" 0 (eval_cmp Ltu W32 0xFFFFFFFF 0);
  check_int "ashr sign fill" 0xFFFFFFFF (eval_binop Ashr W32 0x80000000 31);
  check_int "lshr no fill" 1 (eval_binop Lshr W32 0x80000000 31)

(* Random expression generator for semantic-preservation properties. *)
let gen_expr =
  let open QCheck.Gen in
  let open Expr in
  (* A small pool of variables shared across the expression. *)
  let mk_vars () =
    [| fresh_var ~name:"a" W32; fresh_var ~name:"b" W32;
       fresh_var ~name:"c" W8 |]
  in
  let vars = mk_vars () in
  let leaf =
    oneof
      [ map (fun v -> word v) (int_bound 0xFFFF);
        map (fun v -> word (v land 0xFFFFFFFF)) int;
        return (var vars.(0));
        return (var vars.(1));
        map (fun v -> byte v) (int_bound 255) ]
  in
  let binops = [| Add; Sub; Mul; Divu; Remu; And; Or; Xor; Shl; Lshr; Ashr |] in
  let cmpops = [| Eq; Ne; Ltu; Leu; Lts; Les |] in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [ (2, leaf);
          (4,
           (fun op a b ->
              let a = if width_of a = W8 then zext a else a in
              let b = if width_of b = W8 then zext b else b in
              binop op a b)
           <$> map (fun i -> binops.(i)) (int_bound 10)
           <*> go (depth - 1) <*> go (depth - 1));
          (2,
           (fun op a b ->
              let a = if width_of a = W8 then zext a else a in
              let b = if width_of b = W8 then zext b else b in
              zext (cmp op a b))
           <$> map (fun i -> cmpops.(i)) (int_bound 5)
           <*> go (depth - 1) <*> go (depth - 1));
          (1,
           (fun c a b ->
              let a = if width_of a = W8 then zext a else a in
              let b = if width_of b = W8 then zext b else b in
              ite (cmp Ne (if width_of c = W8 then zext c else c) (word 0)) a b)
           <$> go (depth - 1) <*> go (depth - 1) <*> go (depth - 1));
          (1, map (fun e ->
                 let e = if width_of e = W8 then zext e else e in
                 zext (extract e 1)) (go (depth - 1))) ]
  in
  go 3

let arb_expr = QCheck.make ~print:Expr.to_string gen_expr

let random_env seed =
  let st = Random.State.make [| seed |] in
  let tbl = Hashtbl.create 8 in
  fun (v : Expr.var) ->
    match Hashtbl.find_opt tbl v.Expr.id with
    | Some x -> x
    | None ->
        let x = Random.State.int st 0x3FFFFFFF in
        Hashtbl.replace tbl v.Expr.id x;
        x

let prop_simplify_preserves_semantics =
  QCheck.Test.make ~count:500 ~name:"simplify preserves eval" arb_expr
    (fun e ->
      let e' = Simplify.simplify e in
      List.for_all
        (fun seed ->
          let env = random_env seed in
          Expr.eval env e = Expr.eval env e')
        [ 1; 2; 3; 42; 1234 ])

let prop_smart_constructors_preserve =
  QCheck.Test.make ~count:500 ~name:"eval within width mask" arb_expr
    (fun e ->
      let env = random_env 7 in
      let v = Expr.eval env e in
      v >= 0 && v <= Expr.mask_of_width (Expr.width_of e))

let prop_simplify_idempotent =
  QCheck.Test.make ~count:300 ~name:"simplify is idempotent" arb_expr
    (fun e ->
      let once = Simplify.simplify e in
      Expr.equal (Simplify.simplify once) once)

(* --- Interval --------------------------------------------------------- *)

let test_interval_infeasible () =
  let open Expr in
  let v = var (fresh_var W32) in
  (* v < 5 and v > 10 is infeasible. *)
  let cs = [ cmp Ltu v (word 5); cmp Ltu (word 10) v ] in
  check_bool "contradiction detected" true (Interval.infer cs = None)

let test_interval_narrowing () =
  let open Expr in
  let x = fresh_var W32 in
  let cs = [ cmp Ltu (var x) (word 100); cmp Ltu (word 50) (var x) ] in
  match Interval.infer cs with
  | None -> Alcotest.fail "should be feasible"
  | Some env ->
      let r = Interval.lookup env x in
      check_int "lo" 51 r.Interval.lo;
      check_int "hi" 99 r.Interval.hi

let test_interval_range_of () =
  let open Expr in
  let x = fresh_var W8 in
  let r =
    Interval.range_of
      (fun _ -> Interval.full W8)
      (binop Add (zext (var x)) (word 10))
  in
  check_int "lo" 10 r.Interval.lo;
  check_int "hi" 265 r.Interval.hi

(* Soundness: for any expression and any environment consistent with the
   per-variable ranges, the evaluated value lies within [range_of]. *)
let prop_interval_sound =
  QCheck.Test.make ~count:300 ~name:"interval range_of is sound" arb_expr
    (fun e ->
      let vars = Expr.vars e in
      (* Random per-variable singleton ranges double as the environment. *)
      let st = Random.State.make [| Hashtbl.hash (Expr.to_string e) |] in
      let assignment = Hashtbl.create 8 in
      List.iter
        (fun (v : Expr.var) ->
          let r =
            (Random.State.int st 0x10000 lsl 16) lor Random.State.int st 0x10000
          in
          Hashtbl.replace assignment v.Expr.id
            (r land Expr.mask_of_width v.Expr.var_width))
        vars;
      let env (v : Expr.var) =
        try Hashtbl.find assignment v.Expr.id with Not_found -> 0
      in
      let lookup (v : Expr.var) = Interval.singleton (env v) in
      let r = Interval.range_of lookup e in
      let value = Expr.eval env e in
      r.Interval.lo <= value && value <= r.Interval.hi)

(* --- DPLL ------------------------------------------------------------- *)

let test_dpll_simple_sat () =
  let c = Cnf.create () in
  let a = Cnf.fresh c and b = Cnf.fresh c in
  Cnf.add_clause c [ a; b ];
  Cnf.add_clause c [ -a; b ];
  (match Dpll.solve c with
   | Some (Dpll.Sat m) -> check_bool "b true" true m.(b)
   | _ -> Alcotest.fail "expected sat")

let test_dpll_unsat () =
  let c = Cnf.create () in
  let a = Cnf.fresh c in
  Cnf.add_clause c [ a ];
  Cnf.add_clause c [ -a ];
  check_bool "unsat" true (Dpll.solve c = Some Dpll.Unsat)

let test_dpll_pigeonhole () =
  (* 3 pigeons, 2 holes: classic small UNSAT instance. *)
  let c = Cnf.create () in
  let p = Array.init 3 (fun _ -> Array.init 2 (fun _ -> Cnf.fresh c)) in
  for i = 0 to 2 do
    Cnf.add_clause c [ p.(i).(0); p.(i).(1) ]
  done;
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Cnf.add_clause c [ -p.(i).(h); -p.(j).(h) ]
      done
    done
  done;
  check_bool "pigeonhole unsat" true (Dpll.solve c = Some Dpll.Unsat)

(* Compare DPLL against brute force on random small CNFs. *)
let prop_dpll_matches_bruteforce =
  let gen =
    QCheck.Gen.(
      let clause nv =
        list_size (int_range 1 3)
          (map2 (fun v s -> if s then v + 2 else -(v + 2)) (int_bound (nv - 1)) bool)
      in
      let* nv = int_range 2 6 in
      let* ncl = int_range 1 12 in
      let* cls = list_repeat ncl (clause nv) in
      return (nv, cls))
  in
  let print (nv, cls) =
    Printf.sprintf "nv=%d cls=%s" nv
      (String.concat ";"
         (List.map (fun c -> String.concat "," (List.map string_of_int c)) cls))
  in
  QCheck.Test.make ~count:300 ~name:"dpll = bruteforce" (QCheck.make ~print gen)
    (fun (nv, cls) ->
      let c = Cnf.create () in
      for _ = 1 to nv do ignore (Cnf.fresh c) done;
      List.iter (Cnf.add_clause c) cls;
      let dpll_sat =
        match Dpll.solve c with
        | Some (Dpll.Sat _) -> true
        | Some Dpll.Unsat -> false
        | None -> QCheck.assume_fail ()
      in
      (* Brute force over variables 2..nv+1 (1 is the TRUE constant). *)
      let brute = ref false in
      for mask = 0 to (1 lsl nv) - 1 do
        let value l =
          let v = abs l in
          let b = if v = 1 then true else (mask lsr (v - 2)) land 1 = 1 in
          if l > 0 then b else not b
        in
        if List.for_all (fun cl -> List.exists value cl) cls then brute := true
      done;
      dpll_sat = !brute)

(* --- Bitblast + Solver ------------------------------------------------ *)

let solve_exprs cs = Solver.check cs

let test_solver_simple () =
  let open Expr in
  let x = fresh_var W32 in
  match solve_exprs [ cmp Eq (binop Add (var x) (word 5)) (word 12) ] with
  | Solver.Sat m -> check_int "x = 7" 7 (m x)
  | _ -> Alcotest.fail "expected sat"

let test_solver_unsat_via_bits () =
  let open Expr in
  let x = fresh_var W32 in
  (* x & 1 == 0 and x & 1 == 1 simultaneously. *)
  let cs =
    [ cmp Eq (binop And (var x) (word 1)) (word 0);
      cmp Eq (binop And (var x) (word 1)) (word 1) ]
  in
  check_bool "unsat" true (solve_exprs cs = Solver.Unsat)

let test_solver_mul_div () =
  let open Expr in
  let x = fresh_var W32 in
  (* x * 3 == 21 *)
  (match solve_exprs [ cmp Eq (binop Mul (var x) (word 3)) (word 21);
                       cmp Ltu (var x) (word 100) ] with
   | Solver.Sat m -> check_int "x = 7" 7 (m x)
   | _ -> Alcotest.fail "mul sat");
  let y = fresh_var W32 in
  (* y / 4 == 5 and y % 4 == 2  ->  y = 22 *)
  (match solve_exprs
           [ cmp Eq (binop Divu (var y) (word 4)) (word 5);
             cmp Eq (binop Remu (var y) (word 4)) (word 2) ] with
   | Solver.Sat m -> check_int "y = 22" 22 (m y)
   | _ -> Alcotest.fail "div sat")

let test_solver_shift () =
  let open Expr in
  let x = fresh_var W32 in
  match solve_exprs [ cmp Eq (binop Shl (word 1) (var x)) (word 64);
                      cmp Ltu (var x) (word 32) ] with
  | Solver.Sat m -> check_int "x = 6" 6 (m x)
  | _ -> Alcotest.fail "shift sat"

let test_solver_bytes () =
  let open Expr in
  let x = fresh_var W8 in
  match solve_exprs [ cmp Eq (zext (var x)) (word 0xAB) ] with
  | Solver.Sat m -> check_int "x = 0xAB" 0xAB (m x)
  | _ -> Alcotest.fail "byte sat"

let test_concretize () =
  let open Expr in
  let x = fresh_var W32 in
  let cs = [ cmp Ltu (var x) (word 10); cmp Ltu (word 5) (var x) ] in
  (match Solver.concretize cs (binop Mul (var x) (word 2)) with
   | Some v -> check_bool "in range" true (v >= 12 && v <= 18 && v mod 2 = 0)
   | None -> Alcotest.fail "feasible");
  check_bool "unsat concretize" true
    (Solver.concretize [ fls ] (var x) = None)

(* Property: on random single-variable constraint pairs the solver's
   verdict matches brute-force evaluation over a sampled domain. *)
let prop_solver_sound_on_simple =
  let open Expr in
  let gen =
    QCheck.Gen.(
      let* op1 = int_bound 5 in
      let* op2 = int_bound 5 in
      let* c1 = int_bound 300 in
      let* c2 = int_bound 300 in
      return (op1, op2, c1, c2))
  in
  QCheck.Test.make ~count:200 ~name:"solver sound vs bruteforce (byte domain)"
    (QCheck.make gen)
    (fun (op1, op2, c1, c2) ->
      let ops = [| Eq; Ne; Ltu; Leu; Lts; Les |] in
      let x = fresh_var W8 in
      let cs =
        [ cmp ops.(op1) (zext (var x)) (word c1);
          cmp ops.(op2) (zext (var x)) (word c2) ]
      in
      let brute =
        let found = ref false in
        for v = 0 to 255 do
          let env (u : Expr.var) = if u.Expr.id = x.Expr.id then v else 0 in
          if List.for_all (fun c -> eval env c = 1) cs then found := true
        done;
        !found
      in
      match Solver.check cs with
      | Solver.Sat _ -> brute
      | Solver.Unsat -> not brute
      | Solver.Unknown -> true)

(* Property: Divu/Remu agree with brute force over byte domains, through
   the full solver pipeline (intervals cannot decide these; they exercise
   the divider circuit). *)
let prop_divmod_matches_bruteforce =
  let open Expr in
  let gen =
    QCheck.Gen.(
      let* d = int_range 1 9 in
      let* q = int_bound 30 in
      let* r = int_bound 8 in
      let* use_div = QCheck.Gen.bool in
      return (d, q, r, use_div))
  in
  QCheck.Test.make ~count:60 ~name:"div/rem equations vs bruteforce"
    (QCheck.make gen)
    (fun (d, q, r, use_div) ->
      let x = fresh_var W8 in
      let cs =
        if use_div then
          [ cmp Eq (binop Divu (zext (var x)) (word d)) (word q) ]
        else [ cmp Eq (binop Remu (zext (var x)) (word d)) (word r) ]
      in
      let brute =
        let found = ref false in
        for v = 0 to 255 do
          if (if use_div then v / d = q else v mod d = r) then found := true
        done;
        !found
      in
      match Solver.check cs with
      | Solver.Sat m ->
          let v = m x in
          brute && (if use_div then v / d = q else v mod d = r)
      | Solver.Unsat -> not brute
      | Solver.Unknown -> true)

(* Property: symbolic shift amounts behave like the masked-amount
   semantics. *)
let prop_symbolic_shift =
  let open Expr in
  QCheck.Test.make ~count:60 ~name:"symbolic shift amount"
    (QCheck.make QCheck.Gen.(int_bound 31))
    (fun k ->
      let s = fresh_var W32 in
      (* (1 << s) == (1 << k) must force s ≡ k (mod 32) given s < 32. *)
      let cs =
        [ cmp Eq (binop Shl (word 1) (var s)) (word (1 lsl k));
          cmp Ltu (var s) (word 32) ]
      in
      match Solver.check cs with
      | Solver.Sat m -> m s = k
      | Solver.Unsat -> false
      | Solver.Unknown -> true)

(* Property: two-variable arithmetic relations round-trip through the SAT
   layer with verified models. *)
let prop_two_var_relation =
  let open Expr in
  QCheck.Test.make ~count:60 ~name:"two-variable sum relation"
    (QCheck.make QCheck.Gen.(int_bound 400))
    (fun target ->
      let a = fresh_var W8 and b = fresh_var W8 in
      let cs =
        [ cmp Eq
            (binop Add (zext (var a)) (zext (var b)))
            (word target) ]
      in
      let brute = target <= 510 in
      match Solver.check cs with
      | Solver.Sat m -> brute && m a + m b = target
      | Solver.Unsat -> not brute
      | Solver.Unknown -> true)

(* --- Indep: constraint-independence slicing --------------------------- *)

let with_accel a f =
  Solver.set_accel a;
  Fun.protect ~finally:(fun () -> Solver.set_accel Solver.default_accel) f

let test_indep_partition () =
  let open Expr in
  let x = var (fresh_var W32)
  and y = var (fresh_var W32)
  and z = var (fresh_var W32) in
  let c1 = cmp Ltu x (word 5) in
  let c2 = cmp Ltu y (word 7) in
  let c3 = cmp Ltu (word 1) x in
  (* c4 links y and z, so it must land in c2's group. *)
  let c4 = cmp Eq (binop Add y z) (word 9) in
  let groups = Indep.partition [ c1; c2; c3; c4 ] in
  check_int "two groups" 2 (List.length groups);
  let has g c = List.exists (Expr.equal c) g in
  let gx = List.find (fun g -> has g c1) groups in
  let gy = List.find (fun g -> has g c2) groups in
  check_bool "c3 with c1" true (has gx c3);
  check_bool "c4 with c2" true (has gy c4);
  check_int "no constraint lost" 4 (List.length gx + List.length gy)

let test_indep_relevant () =
  let open Expr in
  let x = var (fresh_var W32) and y = var (fresh_var W32) in
  let c1 = cmp Ltu x (word 5) in
  let c2 = cmp Ltu y (word 7) in
  let c3 = cmp Ltu (word 1) x in
  let slice = Indep.relevant [ c1; c2; c3 ] (binop Add x (word 1)) in
  check_int "two relevant" 2 (List.length slice);
  check_bool "keeps c1" true (List.exists (Expr.equal c1) slice);
  check_bool "keeps c3" true (List.exists (Expr.equal c3) slice);
  check_bool "drops c2" false (List.exists (Expr.equal c2) slice)

(* Disjoint groups solved separately must give the same verdict (and a
   genuine combined model) as solving the whole conjunction at once. *)
let test_indep_equisat () =
  let open Expr in
  let x = fresh_var W32 and y = fresh_var W32 in
  let sat_set =
    [ cmp Eq (binop Add (var x) (word 5)) (word 12);
      cmp Eq (binop Mul (var y) (word 3)) (word 21);
      cmp Ltu (var y) (word 100) ]
  in
  let unsat_set =
    [ cmp Eq (binop And (var x) (word 1)) (word 0);
      cmp Ltu (var y) (word 7);
      cmp Eq (binop And (var x) (word 1)) (word 1) ]
  in
  let sliced_only =
    { Solver.default_accel with Solver.use_cache = false }
  in
  with_accel sliced_only (fun () ->
      (match Solver.check sat_set with
       | Solver.Sat m ->
           check_int "x from group 1" 7 (m x);
           check_int "y from group 2" 7 (m y)
       | _ -> Alcotest.fail "sliced sat");
      check_bool "sliced unsat" true (Solver.check unsat_set = Solver.Unsat));
  with_accel Solver.no_accel (fun () ->
      check_bool "unsliced sat" true
        (match Solver.check sat_set with Solver.Sat _ -> true | _ -> false);
      check_bool "unsliced unsat" true
        (Solver.check unsat_set = Solver.Unsat))

(* --- Qcache: canonicalizing counterexample cache ----------------------- *)

let test_qcache_exact () =
  let open Expr in
  let q = Qcache.create () in
  let x = fresh_var W32 in
  let c1 = cmp Ltu (var x) (word 5) in
  let c2 = cmp Ltu (word 1) (var x) in
  check_bool "miss first" true (Qcache.lookup q [ c1; c2 ] = Qcache.Miss);
  Qcache.store_sat q [ c1; c2 ] (fun _ -> 3);
  (* Exact hits are canonical: order must not matter. *)
  (match Qcache.lookup q [ c2; c1 ] with
   | Qcache.Exact_sat m -> check_int "model survives" 3 (m x)
   | _ -> Alcotest.fail "expected exact hit");
  Qcache.store_unsat q [ c1 ];
  check_bool "exact unsat" true (Qcache.lookup q [ c1 ] = Qcache.Exact_unsat)

let test_qcache_subset_unsat () =
  let open Expr in
  let q = Qcache.create () in
  let x = fresh_var W32 and y = fresh_var W32 in
  let c1 = cmp Ltu (var x) (word 5) in
  let c2 = cmp Ltu (word 10) (var x) in
  let extra = cmp Eq (var y) (word 0) in
  Qcache.store_unsat q [ c1; c2 ];
  (* The cached Unsat core {c1,c2} is a subset of the query. *)
  check_bool "superset proven unsat" true
    (Qcache.lookup q [ extra; c2; c1 ] = Qcache.Subset_unsat);
  (* A query containing only part of the core proves nothing. *)
  check_bool "partial overlap misses" true
    (Qcache.lookup q [ extra; c1 ] = Qcache.Miss)

let test_qcache_model_reuse () =
  let open Expr in
  let q = Qcache.create () in
  let x = fresh_var W32 in
  let c1 = cmp Ltu (word 5) (var x) in
  Qcache.store_sat q [ c1 ] (fun _ -> 6);
  (* x=6 also satisfies the tighter superset query: reused after a cheap
     evaluation, no solve needed. *)
  (match Qcache.lookup q [ c1; cmp Ltu (var x) (word 10) ] with
   | Qcache.Reuse_sat m -> check_int "model reused" 6 (m x)
   | _ -> Alcotest.fail "expected model reuse");
  (* x=6 violates x < 3: no reuse. *)
  check_bool "unsatisfying model rejected" true
    (Qcache.lookup q [ c1; cmp Ltu (var x) (word 3) ] = Qcache.Miss)

let test_qcache_renaming () =
  let open Expr in
  let q = Qcache.create () in
  let x = fresh_var W32 in
  Qcache.store_sat q [ cmp Ltu (var x) (word 5) ] (fun _ -> 3);
  (* A structurally identical query over a different variable is an exact
     hit — keys are normalized up to renaming — with the stored model
     translated onto this query's variable. *)
  let z = fresh_var W32 in
  (match Qcache.lookup_info q [ cmp Ltu (var z) (word 5) ] with
   | Qcache.Exact_sat m, info ->
       check_int "translated model" 3 (m z);
       check_bool "flagged as renamed" true info.Qcache.i_renamed
   | _ -> Alcotest.fail "expected renamed exact hit");
  (* The original query itself is an exact hit but not a renamed one. *)
  (match Qcache.lookup_info q [ cmp Ltu (var x) (word 5) ] with
   | Qcache.Exact_sat _, info ->
       check_bool "same-key hit not flagged" false info.Qcache.i_renamed
   | _ -> Alcotest.fail "expected exact hit");
  (* The same shape at a different width is a different renamed key. *)
  let b = fresh_var W8 in
  check_bool "width is part of the key" true
    (match Qcache.lookup q [ cmp Ltu (var b) (byte 5) ] with
     | Qcache.Exact_sat _ -> false
     | _ -> true)

let test_qcache_reuse_masks_width () =
  let open Expr in
  let q = Qcache.create () in
  let x = fresh_var W32 in
  Qcache.store_sat q [ cmp Ltu (word 5) (var x) ] (fun _ -> 511);
  (* The stored 32-bit model value can reach an 8-bit twin through model
     reuse (the renamed keys differ in width, so it is not an exact hit,
     but evaluation masks at the Var node and verifies). The model handed
     back must be masked to the query variable's width. *)
  let b = fresh_var W8 in
  (match Qcache.lookup q [ cmp Ltu (byte 5) (var b) ] with
   | Qcache.Reuse_sat m -> check_int "masked to W8" 255 (m b)
   | Qcache.Exact_sat _ -> Alcotest.fail "widths must not collapse"
   | _ -> Alcotest.fail "expected model reuse")

let test_qcache_sharded_concurrent () =
  let open Expr in
  let sc = Qcache.Sharded.create ~shards:4 ~capacity:1024 () in
  let rounds = 200 in
  let work () =
    for i = 0 to rounds - 1 do
      (* Every domain mints its own variables, but the shapes repeat, so
         renaming collapses them onto shared entries: the first domain to
         store owns the entry and everyone else hits it. *)
      let x = fresh_var W32 in
      let c = [ cmp Ltu (var x) (word (i mod 10)) ] in
      (match fst (Qcache.Sharded.lookup sc c) with
       | Qcache.Miss -> Qcache.Sharded.store_sat sc c (fun _ -> 0)
       | _ -> ());
      let y = fresh_var W32 in
      let u =
        [ cmp Ltu (var y) (word (i mod 7));
          cmp Ltu (word (7 + (i mod 7))) (var y) ]
      in
      match fst (Qcache.Sharded.lookup sc u) with
      | Qcache.Miss -> Qcache.Sharded.store_unsat sc u
      | _ -> ()
    done
  in
  let domains = List.init 3 (fun _ -> Domain.spawn work) in
  work ();
  List.iter Domain.join domains;
  let c = Qcache.Sharded.counts sc in
  check_int "every lookup is a hit or a miss"
    c.Qcache.Sharded.sc_lookups
    (c.Qcache.Sharded.sc_hits + c.Qcache.Sharded.sc_misses);
  check_int "4 domains x 2 lookups per round"
    (4 * 2 * rounds) c.Qcache.Sharded.sc_lookups;
  check_bool "shared entries produce hits" true
    (c.Qcache.Sharded.sc_hits > 0);
  check_bool "renamed twins collapse" true
    (c.Qcache.Sharded.sc_renamed_hits > 0);
  check_bool "cross-domain hits observed" true
    (c.Qcache.Sharded.sc_cross_hits > 0);
  (* A shape any domain answered is an answer for all (exact entry or a
     reusable model — either way, not a miss). *)
  let z = fresh_var W32 in
  check_bool "post-join hit" true
    (fst (Qcache.Sharded.lookup sc [ cmp Ltu (var z) (word 3) ])
     <> Qcache.Miss)

let test_qcache_eviction () =
  let open Expr in
  let q = Qcache.create ~capacity:4 ~model_reuse:0 () in
  let cs =
    List.init 6 (fun i ->
        [ cmp Eq (var (fresh_var W32)) (word i) ])
  in
  List.iter (Qcache.store_unsat q) cs;
  check_bool "bounded" true (Qcache.size q <= 4);
  check_bool "evictions counted" true (Qcache.evictions q > 0);
  (* The oldest entry is gone — from the exact table and the unsat
     index (no phantom subset proofs). *)
  check_bool "oldest evicted" true (Qcache.lookup q (List.hd cs) = Qcache.Miss);
  (* The newest entry survived. *)
  check_bool "newest kept" true
    (Qcache.lookup q (List.nth cs 5) = Qcache.Exact_unsat)

(* Property: the accelerated solver (slicing + cache, queries issued
   twice to force hits) and the from-scratch baseline agree on Sat/Unsat
   for random multi-variable constraint sets. *)
let prop_accel_agrees_with_baseline =
  let open Expr in
  let gen =
    QCheck.Gen.(
      let clause = triple (int_bound 5) (int_bound 2) (int_bound 300) in
      list_size (int_range 1 6) clause)
  in
  QCheck.Test.make ~count:150 ~name:"accelerated solver = baseline"
    (QCheck.make gen)
    (fun spec ->
      let ops = [| Eq; Ne; Ltu; Leu; Lts; Les |] in
      let vars = [| fresh_var W8; fresh_var W8; fresh_var W8 |] in
      let cs =
        List.map
          (fun (op, v, k) ->
            cmp ops.(op) (zext (var vars.(v))) (word k))
          spec
      in
      let verdict r =
        match r with
        | Solver.Sat _ -> `Sat
        | Solver.Unsat -> `Unsat
        | Solver.Unknown -> `Unknown
      in
      let base =
        with_accel Solver.no_accel (fun () -> verdict (Solver.check cs))
      in
      let accel =
        with_accel Solver.default_accel (fun () ->
            (* First call populates the cache (misses), the second and the
               growing prefixes exercise exact hits, subset-unsat proofs
               and model reuse. *)
            ignore (Solver.check cs);
            List.iteri
              (fun i _ ->
                let prefix = List.filteri (fun j _ -> j <= i) cs in
                ignore (Solver.check prefix))
              cs;
            verdict (Solver.check cs))
      in
      base = `Unknown || accel = `Unknown || base = accel)

(* Property: Sat models coming out of the accelerated pipeline (cache
   hits included) always satisfy the full constraint set. *)
let prop_accel_models_verified =
  let open Expr in
  let gen =
    QCheck.Gen.(
      let clause = triple (int_bound 5) (int_bound 2) (int_bound 300) in
      list_size (int_range 1 5) clause)
  in
  QCheck.Test.make ~count:150 ~name:"accelerated models satisfy constraints"
    (QCheck.make gen)
    (fun spec ->
      let ops = [| Eq; Ne; Ltu; Leu; Lts; Les |] in
      let vars = [| fresh_var W8; fresh_var W8; fresh_var W8 |] in
      let cs =
        List.map
          (fun (op, v, k) ->
            cmp ops.(op) (zext (var vars.(v))) (word k))
          spec
      in
      with_accel Solver.default_accel (fun () ->
          ignore (Solver.check cs);
          match Solver.check cs with
          | Solver.Sat m -> List.for_all (fun c -> eval m c = 1) cs
          | Solver.Unsat | Solver.Unknown -> true))

(* --- incremental sessions (Incr) ------------------------------------- *)

(* Property: a session following an arbitrary stream of pushes, pops and
   queries gives the same feasibility verdicts as re-solving each query
   from scratch. Pop-then-push recreates cons cells, so the stream also
   exercises fork-divergence resync (physical-identity matching), the
   cached-model fast path, and session compaction. *)
let prop_incr_matches_scratch =
  let open Expr in
  let gen =
    QCheck.Gen.(
      let clause = triple (int_bound 5) (int_bound 2) (int_bound 300) in
      let action = pair (int_bound 3) clause in
      list_size (int_range 4 40) action)
  in
  QCheck.Test.make ~count:100
    ~name:"incremental session verdicts = from-scratch verdicts"
    (QCheck.make gen)
    (fun actions ->
      let ops = [| Eq; Ne; Ltu; Leu; Lts; Les |] in
      let vars = [| fresh_var W8; fresh_var W8; fresh_var W8 |] in
      let mk (op, v, k) = cmp ops.(op) (zext (var vars.(v))) (word k) in
      let sess = Incr.create () in
      let cs = ref [] in
      List.for_all
        (fun (a, spec) ->
          match a with
          | 0 | 1 ->
              cs := mk spec :: !cs;
              true
          | 2 ->
              (match !cs with [] -> () | _ :: t -> cs := t);
              true
          | _ ->
              let probe = mk spec in
              Incr.feasible sess !cs probe
              = Solver.is_feasible (probe :: !cs))
        actions)

let test_incr_fork_divergence () =
  let open Expr in
  let x = fresh_var W32 in
  let base = [ cmp Ltu (var x) (word 10) ] in
  let a = cmp Eq (var x) (word 3) :: base in
  let b = cmp Eq (var x) (word 20) :: base in
  let sess = Incr.create () in
  check_bool "branch a feasible" true (Incr.feasible sess a tru);
  (* resync from sibling a to sibling b: pop the divergent frame, keep
     the shared tail *)
  check_bool "branch b contradicts the bound" false (Incr.feasible sess b tru);
  check_bool "back on branch a" true
    (Incr.feasible sess a (cmp Eq (var x) (word 3)));
  check_bool "popped to the shared base" true (Incr.feasible sess base tru)

let test_incr_concretize_sliced () =
  let open Expr in
  let x = fresh_var W32 and y = fresh_var W32 in
  let cs =
    [ cmp Eq (var y) (word 7); cmp Eq (var x) (word 5) ]
  in
  (match Incr.concretize cs ~pinned:[] (var x) with
   | Some v -> check_int "only the relevant slice constrains x" 5 v
   | None -> Alcotest.fail "feasible concretization");
  (* a replay pin outside the slice must still be audited: an
     unsatisfiable pin surfaces as None, not as a fabricated value *)
  let pin = cmp Ltu (var y) (word 0) in
  match Incr.concretize (pin :: cs) ~pinned:[ pin ] (var x) with
  | None -> ()
  | Some _ -> Alcotest.fail "contradictory pin must poison the answer"

let test_incr_witness () =
  let open Expr in
  let x = fresh_var W32 in
  let cs = [ cmp Ltu (var x) (word 4); cmp Ltu (word 1) (var x) ] in
  let sess = Incr.create () in
  (match Incr.witness sess cs with
   | Some m ->
       check_bool "witness satisfies the path" true
         (List.for_all (fun c -> eval m c = 1) cs)
   | None -> Alcotest.fail "expected a witness");
  let dead = cmp Eq (var x) (word 9) :: cs in
  match Incr.witness sess dead with
  | None -> ()
  | Some _ -> Alcotest.fail "infeasible path must yield no witness"

(* Sibling branches pushed through one session accumulate dead circuits;
   once the clutter dwarfs the live stack the session must compact (and
   keep answering correctly afterwards). *)
let test_incr_compaction () =
  let open Expr in
  let sess = Incr.create () in
  let s0 = Solver.stats () in
  for k = 0 to 99 do
    let v = fresh_var W8 in
    let cs = [ cmp Eq (zext (var v)) (word (k land 0xff)) ] in
    check_bool "sibling branch feasible" true (Incr.feasible sess cs tru)
  done;
  let d = Solver.diff_stats (Solver.stats ()) s0 in
  check_bool "session compacted at least once" true
    (d.Solver.s_incr_rebuilds > 0)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "ddt_solver"
    [ ("expr",
       [ Alcotest.test_case "constant folding" `Quick test_const_fold;
         Alcotest.test_case "algebraic identities" `Quick test_identities;
         Alcotest.test_case "not pushes into cmp" `Quick test_not_pushes_into_cmp;
         Alcotest.test_case "extract/concat roundtrip" `Quick
           test_extract_concat_roundtrip;
         Alcotest.test_case "signed semantics" `Quick test_eval_signed;
         qtest prop_simplify_preserves_semantics;
         qtest prop_smart_constructors_preserve;
         qtest prop_simplify_idempotent ]);
      ("interval",
       [ Alcotest.test_case "infeasible" `Quick test_interval_infeasible;
         Alcotest.test_case "narrowing" `Quick test_interval_narrowing;
         Alcotest.test_case "range_of" `Quick test_interval_range_of;
         qtest prop_interval_sound ]);
      ("dpll",
       [ Alcotest.test_case "simple sat" `Quick test_dpll_simple_sat;
         Alcotest.test_case "unsat" `Quick test_dpll_unsat;
         Alcotest.test_case "pigeonhole" `Quick test_dpll_pigeonhole;
         qtest prop_dpll_matches_bruteforce ]);
      ("indep",
       [ Alcotest.test_case "partition" `Quick test_indep_partition;
         Alcotest.test_case "relevant slice" `Quick test_indep_relevant;
         Alcotest.test_case "sliced equisatisfiable" `Quick test_indep_equisat ]);
      ("qcache",
       [ Alcotest.test_case "exact hit" `Quick test_qcache_exact;
         Alcotest.test_case "subset unsat" `Quick test_qcache_subset_unsat;
         Alcotest.test_case "model reuse" `Quick test_qcache_model_reuse;
         Alcotest.test_case "renaming normalization" `Quick
           test_qcache_renaming;
         Alcotest.test_case "reuse masks width" `Quick
           test_qcache_reuse_masks_width;
         Alcotest.test_case "sharded concurrent" `Quick
           test_qcache_sharded_concurrent;
         Alcotest.test_case "lru eviction" `Quick test_qcache_eviction;
         qtest prop_accel_agrees_with_baseline;
         qtest prop_accel_models_verified ]);
      ("incr",
       [ Alcotest.test_case "fork divergence resync" `Quick
           test_incr_fork_divergence;
         Alcotest.test_case "sliced concretize audits pins" `Quick
           test_incr_concretize_sliced;
         Alcotest.test_case "witness" `Quick test_incr_witness;
         Alcotest.test_case "compaction" `Quick test_incr_compaction;
         qtest prop_incr_matches_scratch ]);
      ("solver",
       [ Alcotest.test_case "linear equation" `Quick test_solver_simple;
         Alcotest.test_case "parity contradiction" `Quick
           test_solver_unsat_via_bits;
         Alcotest.test_case "mul and div" `Quick test_solver_mul_div;
         Alcotest.test_case "shift" `Quick test_solver_shift;
         Alcotest.test_case "byte variables" `Quick test_solver_bytes;
         Alcotest.test_case "concretize" `Quick test_concretize;
         qtest prop_solver_sound_on_simple;
         qtest prop_divmod_matches_bruteforce;
         qtest prop_symbolic_shift;
         qtest prop_two_var_relation ]) ]
