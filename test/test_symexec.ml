(* Unit tests for ddt_symexec: copy-on-write memory, forking on symbolic
   branches, symbolic hardware, concretization, interrupt injection. *)

module Expr = Ddt_solver.Expr
module Mem = Ddt_dvm.Mem
module Layout = Ddt_dvm.Layout
module Image = Ddt_dvm.Image
module Kstate = Ddt_kernel.Kstate
module Pci = Ddt_kernel.Pci
module Symdev = Ddt_hw.Symdev
open Ddt_symexec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let device () =
  Pci.assign_resources
    { Pci.vendor_id = 1; device_id = 2; revision = 0; bar_sizes = [ 0x1000 ];
      irq_line = 9 }
    ~mmio_base:Layout.mmio_base

(* --- Symmem -------------------------------------------------------------- *)

let qtest t = QCheck_alcotest.to_alcotest t

let test_cow_fork_isolation () =
  let base = Mem.create () in
  Mem.write_u32 base 0x1000 0xCAFE;
  let m1 = Symmem.create ~base ~symdev:None in
  check_int "reads through to base" 0xCAFE
    (match Symmem.read_u32 m1 0x1000 with
     | Expr.Const (_, v) -> v
     | _ -> -1);
  Symmem.write_u32 m1 0x1000 (Expr.word 1);
  let m2 = Symmem.fork m1 in
  Symmem.write_u32 m2 0x1000 (Expr.word 2);
  Symmem.write_u32 m1 0x2000 (Expr.word 3);
  check_bool "parent keeps its value" true
    (Symmem.read_u32 m1 0x1000 = Expr.word 1);
  check_bool "child sees its own write" true
    (Symmem.read_u32 m2 0x1000 = Expr.word 2);
  check_bool "child misses parent's post-fork write" true
    (match Symmem.read_u32 m2 0x2000 with Expr.Const (_, 0) -> true | _ -> false);
  check_bool "chain grew" true (Symmem.chain_depth m2 >= 2)

let test_cow_word_byte_roundtrip () =
  let base = Mem.create () in
  let m = Symmem.create ~base ~symdev:None in
  Symmem.write_u32 m 0x1000 (Expr.word 0x11223344);
  check_int "byte 0" 0x44
    (match Symmem.read_u8 m 0x1000 with Expr.Const (_, v) -> v | _ -> -1);
  check_int "byte 3" 0x11
    (match Symmem.read_u8 m 0x1003 with Expr.Const (_, v) -> v | _ -> -1);
  (* A symbolic word decomposes into extracts and recomposes to itself. *)
  let v = Expr.var (Expr.fresh_var Expr.W32) in
  Symmem.write_u32 m 0x2000 v;
  check_bool "symbolic roundtrip" true (Expr.equal (Symmem.read_u32 m 0x2000) v)

let test_symbolic_device_reads () =
  let base = Mem.create () in
  let sd = Symdev.create (device ()) in
  let m = Symmem.create ~base ~symdev:(Some sd) in
  let r1 = Symmem.read_u8 m Layout.mmio_base in
  let r2 = Symmem.read_u8 m Layout.mmio_base in
  check_bool "fresh symbolic per read" true
    (match r1, r2 with
     | Expr.Var a, Expr.Var b -> a.Expr.id <> b.Expr.id
     | _ -> false);
  (* Writes to the device are discarded. *)
  Symmem.write_u8 m Layout.mmio_base (Expr.byte 0x55);
  (match Symmem.read_u8 m Layout.mmio_base with
   | Expr.Var _ -> ()
   | _ -> Alcotest.fail "device write must be discarded")

(* Differential property: a random interleaving of byte/word writes,
   reads and forks on Symmem agrees with a reference model (a plain map
   per fork lineage). *)
let prop_cow_matches_reference =
  let gen_ops =
    QCheck.Gen.(
      list_size (int_range 1 60)
        (oneof
           [ map2 (fun a v -> `W8 (0x1000 + a, v)) (int_bound 63) (int_bound 255);
             map2
               (fun a v -> `W32 (0x1000 + (4 * a), v land 0xFFFFFFFF))
               (int_bound 15) int;
             map (fun a -> `R8 (0x1000 + a)) (int_bound 63);
             map (fun a -> `R32 (0x1000 + (4 * a))) (int_bound 15);
             return `Fork ]))
  in
  QCheck.Test.make ~count:100 ~name:"cow memory matches reference model"
    (QCheck.make gen_ops)
    (fun ops ->
      let base = Mem.create () in
      (* Active lineage: (symmem, reference byte map). Fork clones both;
         we keep operating on the newest child and occasionally return to
         the parent, which must be unaffected. *)
      let ref_model = Hashtbl.create 64 in
      let read_ref a = try Hashtbl.find ref_model a with Not_found -> 0 in
      let m = ref (Symmem.create ~base ~symdev:None) in
      let parents = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `W8 (a, v) ->
              Symmem.write_u8 !m a (Expr.byte v);
              Hashtbl.replace ref_model a v
          | `W32 (a, v) ->
              Symmem.write_u32 !m a (Expr.word v);
              for i = 0 to 3 do
                Hashtbl.replace ref_model (a + i) ((v lsr (8 * i)) land 0xFF)
              done
          | `R8 a -> (
              match Symmem.read_u8 !m a with
              | Expr.Const (_, v) -> if v <> read_ref a then ok := false
              | _ -> ok := false)
          | `R32 a -> (
              match Symmem.read_u32 !m a with
              | Expr.Const (_, v) ->
                  let expected =
                    read_ref a
                    lor (read_ref (a + 1) lsl 8)
                    lor (read_ref (a + 2) lsl 16)
                    lor (read_ref (a + 3) lsl 24)
                  in
                  if v <> expected then ok := false
              | _ -> ok := false)
          | `Fork ->
              (* Snapshot the reference; continue on the child. *)
              parents := (!m, Hashtbl.copy ref_model) :: !parents;
              m := Symmem.fork !m)
        ops;
      (* Parents must still agree with their snapshots. *)
      List.iter
        (fun (pm, pref) ->
          for a = 0x1000 to 0x1040 do
            match Symmem.read_u8 pm a with
            | Expr.Const (_, v) ->
                let e = try Hashtbl.find pref a with Not_found -> 0 in
                if v <> e then ok := false
            | _ -> ok := false
          done)
        !parents;
      !ok)

(* --- the executor on small driver programs -------------------------------- *)

let build_engine ?config src =
  let img = Ddt_minicc.Codegen.compile ~name:"unit" src in
  let base = Mem.create () in
  let loaded = Image.load img base ~base:Layout.image_base in
  let dev = device () in
  let symdev = Symdev.create dev in
  let eng = Exec.create ?config loaded base symdev in
  let ks = Kstate.create ~device:dev () in
  (eng, loaded, ks)

let run_to_completion eng st ~name ~addr ~args =
  Exec.start_invocation eng st ~name ~addr ~args;
  Exec.run eng ();
  Exec.finished eng

let test_fork_on_symbolic_branch () =
  (* The driver branches on a device register: both sides must be
     explored and produce different return values. *)
  let src = {|
    const MMIO = 0xD0000000;
    int driver_entry(void) {
      int status = *(MMIO + 0);
      if (status & 1) { return 100; }
      return 200;
    }
  |} in
  let eng, loaded, ks = build_engine src in
  let st = Exec.new_root_state eng ks in
  let finished =
    run_to_completion eng st ~name:"load"
      ~addr:(loaded.Image.base + loaded.Image.image.Image.entry)
      ~args:[]
  in
  let rets =
    List.filter_map
      (fun s ->
        match s.Symstate.status with
        | Some (Symstate.Returned r) -> Some r
        | _ -> None)
      finished
    |> List.sort compare
  in
  check_bool "both paths explored" true (rets = [ 100; 200 ])

let test_symbolic_args_fork () =
  let src = {|
    int driver_entry(int x) {
      if (x == 1234) { return 1; }
      if (x < 10) { return 2; }
      return 3;
    }
  |} in
  let eng, loaded, ks = build_engine src in
  let st = Exec.new_root_state eng ks in
  let x = Exec.fresh_symbolic eng st ~name:"x" ~origin:"test" Expr.W32 in
  let finished =
    run_to_completion eng st ~name:"load"
      ~addr:(loaded.Image.base + loaded.Image.image.Image.entry)
      ~args:[ x ]
  in
  let rets =
    List.filter_map
      (fun s ->
        match s.Symstate.status with
        | Some (Symstate.Returned r) -> Some r
        | _ -> None)
      finished
    |> List.sort_uniq compare
  in
  check_bool "three-way dispatch covered" true (rets = [ 1; 2; 3 ])

let test_div_by_zero_forks_crash () =
  let src = {|
    const MMIO = 0xD0000000;
    int driver_entry(void) {
      int d = *(MMIO + 0);
      return 1000 / (d & 0xFF);
    }
  |} in
  let eng, loaded, ks = build_engine src in
  let st = Exec.new_root_state eng ks in
  let finished =
    run_to_completion eng st ~name:"load"
      ~addr:(loaded.Image.base + loaded.Image.image.Image.entry)
      ~args:[]
  in
  let crashed =
    List.exists
      (fun s ->
        match s.Symstate.status with
        | Some (Symstate.Crashed c) -> c.Symstate.c_msg = "division by zero"
        | _ -> false)
      finished
  in
  let returned =
    List.exists
      (fun s ->
        match s.Symstate.status with
        | Some (Symstate.Returned _) -> true
        | _ -> false)
      finished
  in
  check_bool "zero divisor path crashes" true crashed;
  check_bool "nonzero divisor path survives" true returned

let test_path_constraints_consistent () =
  (* Contradictory conditions must leave only feasible paths. *)
  let src = {|
    int driver_entry(int x) {
      if (x > 100) {
        if (x < 50) { return 666; }   // infeasible
        return 1;
      }
      return 2;
    }
  |} in
  let eng, loaded, ks = build_engine src in
  let st = Exec.new_root_state eng ks in
  let x = Exec.fresh_symbolic eng st ~name:"x" ~origin:"test" Expr.W32 in
  let finished =
    run_to_completion eng st ~name:"load"
      ~addr:(loaded.Image.base + loaded.Image.image.Image.entry)
      ~args:[ x ]
  in
  let rets =
    List.filter_map
      (fun s ->
        match s.Symstate.status with
        | Some (Symstate.Returned r) -> Some r
        | _ -> None)
      finished
    |> List.sort_uniq compare
  in
  check_bool "dead path never returns" true (not (List.mem 666 rets));
  check_bool "live paths returned" true (rets = [ 1; 2 ])

let test_concretization_constraint_recorded () =
  let eng, _, ks = build_engine "int driver_entry(void) { return 0; }" in
  let st = Exec.new_root_state eng ks in
  let x = Exec.fresh_symbolic eng st ~name:"x" ~origin:"test" Expr.W32 in
  let v = Exec.concretize eng st x "test" in
  (* The concretization must be recorded as a path constraint, so a
     second concretization yields the same value. *)
  check_int "stable concretization" v (Exec.concretize eng st x "test")

let test_interrupt_injection_forks () =
  (* An ISR that crashes on a flag the entry point sets after its kcall:
     only the injected path sees the crash. *)
  let src = {|
    int g_ready;
    int g_chars[8];
    int isr(int ctx) {
      if (g_ready == 0) {
        int p = 0;
        *(p + 0) = 1;      // crash when fired in the window
      }
      return 1;
    }
    int touch(void) {
      NdisStallExecution(1);
      return 0;
    }
    int initialize(void) {
      g_ready = 0;
      touch();             // kcall boundary: injection site
      g_ready = 1;
      return 0;
    }
    int driver_entry(void) {
      g_chars[0] = initialize;
      g_chars[4] = isr;
      NdisMRegisterMiniport(g_chars);
      NdisMRegisterInterrupt(9);
      return 0;
    }
  |} in
  let eng, loaded, ks = build_engine src in
  let st = Exec.new_root_state eng ks in
  ignore
    (run_to_completion eng st ~name:"load"
       ~addr:(loaded.Image.base + loaded.Image.image.Image.entry)
       ~args:[]);
  let _ = Exec.drain_finished eng in
  (* Now run initialize with injection enabled. *)
  let base =
    match
      List.find_opt
        (fun s -> s.Symstate.status = Some (Symstate.Returned 0))
        (Exec.finished eng)
    with
    | Some s -> s
    | None -> st
  in
  let child = Exec.fork_of eng base in
  Exec.start_invocation eng child ~name:"initialize"
    ~addr:(Image.export_addr loaded "initialize")
    ~args:[];
  Exec.run eng ();
  let crashed_in_isr =
    List.exists
      (fun s ->
        match s.Symstate.status with
        | Some (Symstate.Crashed _) -> s.Symstate.injections > 0
        | _ -> false)
      (Exec.finished eng)
  in
  let clean_path =
    List.exists
      (fun s -> s.Symstate.status = Some (Symstate.Returned 0))
      (Exec.finished eng)
  in
  check_bool "injected interrupt hits the window" true crashed_in_isr;
  check_bool "uninjected path completes" true clean_path

let test_coverage_accounting () =
  let src = {|
    int driver_entry(int x) {
      if (x == 7) { return 1; }
      return 0;
    }
  |} in
  let eng, loaded, ks = build_engine src in
  let st = Exec.new_root_state eng ks in
  let x = Exec.fresh_symbolic eng st ~name:"x" ~origin:"t" Expr.W32 in
  ignore
    (run_to_completion eng st ~name:"load"
       ~addr:(loaded.Image.base + loaded.Image.image.Image.entry)
       ~args:[ x ]);
  check_bool "blocks covered" true (Exec.block_coverage eng >= 3);
  let stats = Exec.stats eng in
  check_bool "states created" true (stats.Exec.st_states_created >= 2)

(* --- scheduler strategies ---------------------------------------------------- *)

let mk_states eng ks n =
  List.init n (fun _ -> Exec.new_root_state eng ks)

let sid = function
  | Some s -> s.Symstate.id
  | None -> Alcotest.fail "expected a state"

let test_sched_strategies () =
  let eng, _, ks = build_engine "int driver_entry(void) { return 0; }" in
  let sts = mk_states eng ks 4 in
  let ids = List.map (fun s -> s.Symstate.id) sts in
  let zero _ = 0 in
  let fill strategy priority =
    let q = Sched.create strategy ~priority in
    List.iter (Sched.push q) sts;
    q
  in
  (* DFS pops the newest push (LIFO); a thief steals the oldest. *)
  let q = fill Sched.Dfs zero in
  check_int "dfs pops newest" (List.nth ids 3) (sid (Sched.pop q));
  check_int "dfs length after pop" 3 (Sched.length q);
  check_int "dfs steal takes oldest" (List.hd ids) (sid (Sched.steal q));
  (* BFS pops the oldest push (FIFO). *)
  let q = fill Sched.Bfs zero in
  check_int "bfs pops oldest" (List.hd ids) (sid (Sched.pop q));
  (* Min-touch: smallest priority wins; ties break FIFO. *)
  let prio s = if s.Symstate.id = List.nth ids 2 then 0 else 5 in
  let q = fill Sched.Min_touch prio in
  check_int "min wins" (List.nth ids 2) (sid (Sched.pop q));
  let q = fill Sched.Min_touch zero in
  check_int "fifo tie-break" (List.hd ids) (sid (Sched.pop q));
  check_int "fifo tie-break (2nd)" (List.nth ids 1) (sid (Sched.pop q));
  (* Random pick is deterministic for a given seed and queue. *)
  let q = fill (Sched.Random_pick 42) zero in
  let picked = sid (Sched.pop q) in
  check_bool "random picks a member" true (List.mem picked ids);
  check_int "random length after pop" 3 (Sched.length q);
  (* Empty queues answer None. *)
  let q = Sched.create Sched.Min_touch ~priority:zero in
  check_bool "empty pop" true (Sched.pop q = None);
  check_bool "empty steal" true (Sched.steal q = None)

let test_sched_lazy_heap () =
  let eng, _, ks = build_engine "int driver_entry(void) { return 0; }" in
  let sts = mk_states eng ks 4 in
  let ids = List.map (fun s -> s.Symstate.id) sts in
  (* A state's live priority may grow after insertion (its block gets
     executed more); the heap re-checks lazily and must not return a
     state whose stored key went stale. *)
  let tbl = Hashtbl.create 4 in
  let prio s = try Hashtbl.find tbl s.Symstate.id with Not_found -> 0 in
  let q = Sched.create Sched.Min_touch ~priority:prio in
  List.iter (Sched.push q) sts;
  Hashtbl.replace tbl (List.hd ids) 100;
  check_int "stale min skipped" (List.nth ids 1) (sid (Sched.pop q));
  check_int "still skipped" (List.nth ids 2) (sid (Sched.pop q));
  check_int "hot state comes last" 100 (prio (List.hd sts));
  check_int "third pop" (List.nth ids 3) (sid (Sched.pop q));
  check_int "hot state eventually pops" (List.hd ids) (sid (Sched.pop q));
  check_bool "drained" true (Sched.is_empty q);
  (* A heap steal never takes the current minimum (with >= 2 entries). *)
  Hashtbl.reset tbl;
  List.iteri (fun i s -> Hashtbl.replace tbl s.Symstate.id i) sts;
  let q = Sched.create Sched.Min_touch ~priority:prio in
  List.iter (Sched.push q) sts;
  let stolen = sid (Sched.steal q) in
  check_bool "steal avoids the min" true (stolen <> List.hd ids)

let test_frontier_steal_and_quiesce () =
  let eng, _, ks = build_engine "int driver_entry(void) { return 0; }" in
  let sts = mk_states eng ks 6 in
  let f =
    Frontier.create ~workers:2 ~max_states:64 ~strategy:Sched.Dfs
      ~priority:(fun _ -> 0)
  in
  List.iter (fun s -> ignore (Frontier.push f ~worker:0 s)) sts;
  check_int "size" 6 (Frontier.size f);
  check_bool "not quiescent with queued work" false (Frontier.quiescent f);
  (* Worker 1's own queue is empty, so its pick must steal from worker 0. *)
  (match Frontier.pick f ~worker:1 with
   | Some _ -> Frontier.task_done f
   | None -> Alcotest.fail "steal pick");
  check_bool "steal counted" true (Frontier.steals f >= 1);
  check_int "size after pick" 5 (Frontier.size f);
  let rec drain n =
    match Frontier.pick f ~worker:0 with
    | Some _ ->
        Frontier.task_done f;
        drain (n + 1)
    | None -> n
  in
  check_int "worker 0 drains the rest" 5 (drain 0);
  check_bool "quiescent when empty and nothing inflight" true
    (Frontier.quiescent f)

let test_frontier_cap_and_requeue () =
  let eng, _, ks = build_engine "int driver_entry(void) { return 0; }" in
  let sts = mk_states eng ks 4 in
  let f =
    Frontier.create ~workers:1 ~max_states:2 ~strategy:Sched.Bfs
      ~priority:(fun _ -> 0)
  in
  let admitted =
    List.filter (fun s -> Frontier.push f ~worker:0 s) sts
  in
  check_int "cap admits max_states" 2 (List.length admitted);
  check_int "cap drops the rest" 2 (Frontier.dropped f);
  (* A quantum-expired state bypasses the cap: it was already admitted
     once and dropping it would silently lose a live path. *)
  (match Frontier.pick f ~worker:0 with
   | Some s ->
       Frontier.requeue f ~worker:0 s;
       Frontier.task_done f
   | None -> Alcotest.fail "pick");
  check_int "requeue kept the state" 2 (Frontier.size f);
  check_int "requeue did not drop" 2 (Frontier.dropped f);
  check_int "drain_all returns everything" 2
    (List.length (Frontier.drain_all f));
  check_int "drain_all empties" 0 (Frontier.size f)

let () =
  Alcotest.run "ddt_symexec"
    [ ("symmem",
       [ Alcotest.test_case "cow fork isolation" `Quick test_cow_fork_isolation;
         Alcotest.test_case "word/byte roundtrip" `Quick
           test_cow_word_byte_roundtrip;
         Alcotest.test_case "symbolic device" `Quick test_symbolic_device_reads;
         qtest prop_cow_matches_reference ]);
      ("executor",
       [ Alcotest.test_case "fork on device branch" `Quick
           test_fork_on_symbolic_branch;
         Alcotest.test_case "symbolic args" `Quick test_symbolic_args_fork;
         Alcotest.test_case "div by zero" `Quick test_div_by_zero_forks_crash;
         Alcotest.test_case "path constraints" `Quick
           test_path_constraints_consistent;
         Alcotest.test_case "concretization" `Quick
           test_concretization_constraint_recorded;
         Alcotest.test_case "interrupt injection" `Quick
           test_interrupt_injection_forks;
         Alcotest.test_case "coverage" `Quick test_coverage_accounting ]);
      ("scheduler",
       [ Alcotest.test_case "strategies" `Quick test_sched_strategies;
         Alcotest.test_case "lazy heap" `Quick test_sched_lazy_heap ]);
      ("frontier",
       [ Alcotest.test_case "steal + quiescence" `Quick
           test_frontier_steal_and_quiesce;
         Alcotest.test_case "cap + requeue" `Quick
           test_frontier_cap_and_requeue ]) ]
