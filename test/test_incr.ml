(* Incremental solver sessions: differential pin against the
   from-scratch pipeline.

   Every corpus driver runs twice — sessions disabled (each query
   re-blasted from scratch: the oracle) and enabled — and the dynamic
   bug report must be identical. A further leg re-checks the contract
   under combined chaos injection (worker crashes, forced solver
   exhaustions, memory pressure with the governor), where the witness
   concretization of retired states also routes through a session. At
   jobs = 1 both legs explore deterministically, so coverage must match
   too, not just the bug sets. *)

module Config = Ddt_core.Config
module Session = Ddt_core.Session
module Governor = Ddt_core.Governor
module Exec = Ddt_symexec.Exec
module Guard = Ddt_symexec.Guard
module Solver = Ddt_solver.Solver
module Report = Ddt_checkers.Report
module Corpus = Ddt_drivers.Corpus

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let quick_cfg (e : Corpus.entry) =
  let cfg = Corpus.config e in
  { cfg with Config.max_total_steps = 60_000; plateau_steps = 50_000 }

let run_with ?governor ?(chaos = None) ~incr e =
  let cfg = quick_cfg e in
  let cfg = { cfg with Config.governor = governor } in
  let cfg =
    { cfg with
      Config.exec_config =
        { cfg.Config.exec_config with
          Exec.jobs = 1; solver_incr = incr; chaos } }
  in
  (* Cold query cache per run: neither leg may answer from entries the
     other one populated. *)
  Solver.clear_cache ();
  Session.run cfg

let bug_keys (r : Session.result) =
  List.sort compare (List.map (fun b -> b.Report.b_key) r.Session.r_bugs)

(* One from-scratch reference run per driver, shared by every test. *)
let baseline_tbl : (string, Session.result) Hashtbl.t = Hashtbl.create 8

let baseline (e : Corpus.entry) =
  match Hashtbl.find_opt baseline_tbl e.Corpus.short with
  | Some r -> r
  | None ->
      let r = run_with ~incr:false e in
      Hashtbl.replace baseline_tbl e.Corpus.short r;
      r

(* --- verdict parity on the full corpus ------------------------------------- *)

let test_bug_parity () =
  List.iter
    (fun (e : Corpus.entry) ->
      let base = baseline e in
      let inc = run_with ~incr:true e in
      check_bool (e.Corpus.short ^ " bug set identical") true
        (bug_keys base = bug_keys inc);
      check_int (e.Corpus.short ^ " coverage identical")
        base.Session.r_covered_reachable inc.Session.r_covered_reachable;
      (* the parity is meaningless if the sessions never answered *)
      let sv = inc.Session.r_stats.Exec.st_solver in
      check_bool (e.Corpus.short ^ " sessions actually used") true
        (sv.Solver.s_incr_queries > 0);
      let sv0 = base.Session.r_stats.Exec.st_solver in
      check_int (e.Corpus.short ^ " oracle leg never builds a session") 0
        sv0.Solver.s_incr_queries)
    Corpus.all

let test_session_counters () =
  let reused = ref 0 and pushes = ref 0 and rebuilds = ref 0 in
  List.iter
    (fun (e : Corpus.entry) ->
      let inc = run_with ~incr:true e in
      let sv = inc.Session.r_stats.Exec.st_solver in
      reused := !reused + sv.Solver.s_incr_skipped_recanon;
      pushes := !pushes + sv.Solver.s_incr_pushes;
      rebuilds := !rebuilds + sv.Solver.s_incr_rebuilds)
    Corpus.all;
  check_bool "frames were pushed" true (!pushes > 0);
  check_bool "frames were reused across queries" true (!reused > 0);
  check_bool "sessions were (re)built" true (!rebuilds > 0)

(* --- parity under chaos ----------------------------------------------------- *)

let pressure_limits =
  { Governor.soft_states = 0; soft_cow_depth = 0; soft_live_words = 1;
    min_states = 8; max_retire_per_trip = 1 }

let test_chaos_parity () =
  List.iter
    (fun (e : Corpus.entry) ->
      let base = baseline e in
      let inc =
        run_with ~governor:pressure_limits
          ~chaos:
            (Some
               { Guard.chaos_worker_crash_period = 25;
                 chaos_solver_exhaust_period = 3;
                 chaos_pressure_words = 50_000_000 })
          ~incr:true e
      in
      check_bool
        (e.Corpus.short ^ " bug set identical under chaos with sessions")
        true
        (bug_keys base = bug_keys inc);
      check_bool (e.Corpus.short ^ " session produced a report") true
        (inc.Session.r_finished_states > 0))
    Corpus.all

let () =
  Alcotest.run "ddt_incr"
    [ ("parity",
       [ Alcotest.test_case "bug sets and coverage identical" `Quick
           test_bug_parity;
         Alcotest.test_case "session counters alive" `Quick
           test_session_counters ]);
      ("chaos",
       [ Alcotest.test_case "parity survives fault injection" `Quick
           test_chaos_parity ]) ]
