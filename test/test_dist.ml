(* Distributed exploration: wire-protocol robustness, shared-store
   concurrency, and bug-set parity between the multi-process
   coordinator and the single-process oracle — including with a worker
   SIGKILLed mid-run. *)

open Ddt_core
module Report = Ddt_checkers.Report
module Corpus = Ddt_drivers.Corpus
module Proto = Ddt_dist.Proto
module Dist = Ddt_dist.Dist
module Serve = Ddt_dist.Serve
module Blob = Ddt_solver.Blob
module Qcache = Ddt_solver.Qcache
module Pstore = Ddt_solver.Pstore
module Expr = Ddt_solver.Expr

let bug_keys r =
  List.sort compare (List.map (fun b -> b.Report.b_key) r.Session.r_bugs)

let oracle entry = Ddt.test_driver (Corpus.config entry)

let check_parity ?kill_worker ~workers entry =
  let seq = bug_keys (oracle entry) in
  let r, _ = Dist.run ~workers ?kill_worker (Corpus.config entry) in
  Alcotest.(check (list string))
    (Printf.sprintf "%s: %d-worker bug set = sequential" entry.Corpus.short
       workers)
    seq (bug_keys r)

(* {2 Wire framing} *)

let frame_roundtrip () =
  let payloads = [ ""; "x"; String.make 1000 '\xff'; "hello\nworld" ] in
  let stream = String.concat "" (List.map Proto.frame payloads) in
  let rec pop acc buf =
    match Proto.extract buf with
    | Ok None ->
        Alcotest.(check string) "no residue" "" buf;
        List.rev acc
    | Ok (Some (p, rest)) -> pop (p :: acc) rest
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check (list string)) "all frames recovered" payloads
    (pop [] stream)

let qcheck_framing =
  QCheck.Test.make ~count:500 ~name:"framed stream reassembles at any split"
    QCheck.(pair (small_list (string_of_size Gen.small_nat)) small_nat)
    (fun (payloads, cut) ->
      let stream = String.concat "" (List.map Proto.frame payloads) in
      (* Feed the stream in two arbitrary chunks through a buffer, the
         way the conn layer does, and demand the same payloads out. *)
      let cut = min cut (String.length stream) in
      let feed bufs =
        let rec go acc buf = function
          | [] -> (acc, buf)
          | chunk :: rest ->
              let buf = buf ^ chunk in
              let rec drain acc buf =
                match Proto.extract buf with
                | Ok None -> (acc, buf)
                | Ok (Some (p, rest')) -> drain (p :: acc) rest'
                | Error e -> Alcotest.fail e
              in
              let acc, buf = drain acc buf in
              go acc buf rest
        in
        go [] "" bufs
      in
      let got, residue =
        feed
          [ String.sub stream 0 cut;
            String.sub stream cut (String.length stream - cut) ]
      in
      residue = "" && List.rev got = payloads)

let qcheck_truncation =
  QCheck.Test.make ~count:500 ~name:"truncated stream never yields a frame"
    QCheck.(pair (string_of_size Gen.small_nat) small_nat)
    (fun (payload, drop) ->
      let f = Proto.frame payload in
      let drop = 1 + (drop mod String.length f) in
      let truncated = String.sub f 0 (String.length f - drop) in
      match Proto.extract truncated with
      | Ok None -> true
      | Ok (Some _) -> false
      | Error _ -> true (* a mangled length is allowed to be an error *))

let corrupt_length_is_error () =
  (* A negative / absurd length prefix must be a clean error, not an
     allocation or a hang. *)
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 0x7FFFFFFFl;
  (match Proto.extract (Bytes.to_string b) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "oversized length accepted");
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (-1l);
  match Proto.extract (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative length accepted"

let corrupt_payload_is_error () =
  let f = Proto.frame (Blob.encode [ 1; 2; 3 ]) in
  (* Flip a byte inside the blob payload: the CRC must catch it. *)
  let b = Bytes.of_string f in
  let i = Bytes.length b - 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  match Proto.extract (Bytes.to_string b) with
  | Ok (Some (payload, _)) -> (
      match Proto.decode_payload payload with
      | Error _ -> ()
      | Ok (_ : int list) -> Alcotest.fail "corrupt payload decoded")
  | Ok None -> Alcotest.fail "complete frame not extracted"
  | Error _ -> ()

(* {2 Shared persistent store under concurrent writers} *)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ddt_dist_test_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () -> f dir)

(* Several processes saving overlapping entry sets into one store
   directory must converge: every entry readable afterwards, no
   partial files, racing writers of the same digest harmless. *)
let concurrent_writers_converge () =
  with_tmpdir (fun dir ->
      let mk_cache n =
        let c = Qcache.Sharded.create () in
        for i = 0 to 63 do
          let v = Expr.fresh_var ~name:(Printf.sprintf "w%d" i) Expr.W32 in
          Qcache.Sharded.store_unsat c
            [ Expr.cmp Expr.Eq (Expr.var v) (Expr.word (n + i)) ]
        done;
        c
      in
      let writers = 4 in
      let pids =
        List.init writers (fun w ->
            match Unix.fork () with
            | 0 ->
                (* Overlapping sets: writers w and w+1 share half their
                   entries, so same-digest races actually happen. *)
                let c = mk_cache (w * 32) in
                (match Pstore.open_store ~dir ~key:"conc" with
                 | Ok s -> ignore (Pstore.save s c)
                 | Error _ -> Unix._exit 1);
                Unix._exit 0
            | pid -> pid)
      in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _ -> Alcotest.fail "writer process failed")
        pids;
      match Pstore.open_store ~dir ~key:"conc" with
      | Error e -> Alcotest.fail e
      | Ok s ->
          let c = Qcache.Sharded.create () in
          let loaded = Pstore.load ~index_subsets:false s c in
          Alcotest.(check int) "no unreadable entries" 0 (Pstore.skipped s);
          Alcotest.(check bool)
            (Printf.sprintf "all distinct entries present (loaded %d)" loaded)
            true (loaded > 0))

let refresh_sees_other_writers () =
  with_tmpdir (fun dir ->
      (* Distinct [base] ranges keep the two caches' renamed canonical
         keys disjoint — entries already present refuse to re-import. *)
      let mk_cache tag base n =
        let c = Qcache.Sharded.create () in
        for i = base to base + n - 1 do
          let v = Expr.fresh_var ~name:(tag ^ string_of_int i) Expr.W32 in
          Qcache.Sharded.store_unsat c
            [ Expr.cmp Expr.Eq (Expr.var v) (Expr.word i) ]
        done;
        c
      in
      match
        (Pstore.open_store ~dir ~key:"r", Pstore.open_store ~dir ~key:"r")
      with
      | Ok a, Ok b ->
          let ca = mk_cache "a" 100 5 in
          ignore (Pstore.load ~index_subsets:false a ca);
          let wrote = Pstore.save b (mk_cache "b" 0 7) in
          Alcotest.(check int) "writer flushed" 7 wrote;
          let fresh = Pstore.refresh ~index_subsets:false a ca in
          Alcotest.(check int) "reader imported the flush lazily" 7 fresh;
          Alcotest.(check int) "second refresh is a no-op" 0
            (Pstore.refresh ~index_subsets:false a ca)
      | _ -> Alcotest.fail "open_store failed")

(* {2 Coordinator parity} *)

let parity_case ~workers short () = check_parity ~workers (Corpus.find short)

let kill_case ~workers short () =
  check_parity ~workers ~kill_worker:0 (Corpus.find short)

let serve_roundtrip () =
  with_tmpdir (fun dir ->
      let socket_path = Filename.concat dir "ddt.sock" in
      match Unix.fork () with
      | 0 ->
          let resolve (j : Serve.job) =
            match Corpus.find j.Serve.jq_driver with
            | e -> Ok (Corpus.config ~fixed:j.Serve.jq_fixed e)
            | exception Not_found -> Error ("unknown driver " ^ j.Serve.jq_driver)
          in
          ignore (Serve.serve ~socket_path ~max_jobs:1 ~resolve ());
          Unix._exit 0
      | pid ->
          let rec wait_sock n =
            if n = 0 then Alcotest.fail "server socket never appeared";
            if not (Sys.file_exists socket_path) then begin
              Unix.sleepf 0.05;
              wait_sock (n - 1)
            end
          in
          wait_sock 200;
          let lines =
            match
              Serve.submit ~socket_path
                { Serve.jq_driver = "rtl8029"; jq_fixed = false; jq_workers = 2 }
            with
            | Ok l -> l
            | Error e -> Alcotest.fail e
          in
          ignore (Unix.waitpid [] pid);
          let report =
            List.filter_map Report_json.of_string lines |> function
            | [ r ] -> r
            | _ -> Alcotest.fail "expected exactly one schema report line"
          in
          Alcotest.(check string) "served driver"
            (Corpus.config (Corpus.find "rtl8029")).Config.driver_name
            report.Report_json.j_driver;
          let seq = bug_keys (oracle (Corpus.find "rtl8029")) in
          Alcotest.(check (list string)) "served bug set = sequential" seq
            (List.sort compare
               (List.map
                  (fun b -> b.Report_json.jb_key)
                  report.Report_json.j_bugs)))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ddt_dist"
    [
      ( "proto",
        [
          Alcotest.test_case "frame roundtrip" `Quick frame_roundtrip;
          qt qcheck_framing;
          qt qcheck_truncation;
          Alcotest.test_case "corrupt length" `Quick corrupt_length_is_error;
          Alcotest.test_case "corrupt payload" `Quick corrupt_payload_is_error;
        ] );
      ( "pstore",
        [
          Alcotest.test_case "concurrent writers converge" `Quick
            concurrent_writers_converge;
          Alcotest.test_case "refresh imports other writers lazily" `Quick
            refresh_sees_other_writers;
        ] );
      ( "parity",
        List.concat_map
          (fun e ->
            [
              Alcotest.test_case
                (Printf.sprintf "%s 2-worker parity" e.Corpus.short)
                `Quick
                (parity_case ~workers:2 e.Corpus.short);
            ])
          Corpus.all
        @ [
            Alcotest.test_case "rtl8029 1-worker parity" `Quick
              (parity_case ~workers:1 "rtl8029");
            Alcotest.test_case "rtl8029 4-worker parity" `Quick
              (parity_case ~workers:4 "rtl8029");
          ] );
      ( "recovery",
        List.map
          (fun e ->
            Alcotest.test_case
              (Printf.sprintf "%s parity with worker 0 killed" e.Corpus.short)
              `Quick
              (kill_case ~workers:2 e.Corpus.short))
          Corpus.all );
      ("serve", [ Alcotest.test_case "serve/submit roundtrip" `Quick
                    serve_roundtrip ]);
    ]
