(* Integration tests for ddt_core: sessions over purpose-built drivers
   exercising each checker and the session machinery (workload phases,
   annotations, replay). *)

open Ddt_core
module Report = Ddt_checkers.Report
module Exec = Ddt_symexec.Exec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let harness ~extra ~init_body ~query_body = Printf.sprintf {|
  const TAG = 0x54455354;
  int g_ctx;
  int chars[8];
%s
  int initialize(void) {
%s
    return 0;
  }
  int query(int oid, int buf, int len) {
%s
    return 4;
  }
  int driver_entry(void) {
    chars[0] = initialize;
    chars[1] = query;
    return NdisMRegisterMiniport(chars);
  }
|} extra init_body query_body

let run ?(workload = Config.[ W_initialize; W_query ]) ?exec_config src =
  let image = Ddt_minicc.Codegen.compile ~name:"t" src in
  let cfg =
    Config.make ~driver_name:"t" ~image ~driver_class:Config.Network
      ~workload ?exec_config ()
  in
  Ddt.test_driver cfg

let kinds r =
  List.map (fun b -> b.Report.b_kind) r.Session.r_bugs |> List.sort compare

let messages r = List.map (fun b -> b.Report.b_message) r.Session.r_bugs

let has_message r needle =
  List.exists
    (fun m ->
      let n = String.length needle and l = String.length m in
      let rec go i = i + n <= l && (String.sub m i n = needle || go (i + 1)) in
      go 0)
    (messages r)

(* --- memcheck rules ----------------------------------------------------- *)

let test_below_sp_access () =
  let r =
    run
      (harness ~extra:""
         ~init_body:{|
    int arr[4];
    arr[0] = 1;
    int p = arr;
    int v = *(p - 64);   // below the stack pointer
    g_ctx = v;
  |}
         ~query_body:"")
  in
  check_bool "below-sp flagged" true (has_message r "below the stack pointer")

let test_use_after_free () =
  let r =
    run
      (harness ~extra:""
         ~init_body:{|
    int p;
    int status = NdisAllocateMemoryWithTag(&p, 32, TAG);
    if (status != 0) { return 1; }
    NdisFreeMemory(p, 32, 0);
    g_ctx = *(p + 0);    // use after free
  |}
         ~query_body:"")
  in
  check_bool "use-after-free flagged" true
    (List.mem Report.Memory_error (kinds r))

let test_kernel_handle_deref () =
  let r =
    run
      (harness ~extra:""
         ~init_body:{|
    int cfg;
    int status = NdisOpenConfiguration(&cfg);
    if (status != 0) { return 1; }
    g_ctx = *(cfg + 0);  // handles are opaque to drivers
    NdisCloseConfiguration(cfg);
  |}
         ~query_body:"")
  in
  check_bool "handle deref flagged" true (has_message r "kernel handle")

let test_write_to_code () =
  let r =
    run
      (harness ~extra:""
         ~init_body:{|
    int p = driver_entry;
    *(p + 0) = 0;        // self-patching driver
  |}
         ~query_body:"")
  in
  check_bool "code write flagged" true (has_message r "code section")

(* --- loopcheck ------------------------------------------------------------ *)

let test_infinite_loop () =
  let exec_config =
    { Exec.default_config with Exec.max_steps_per_state = 4_000 }
  in
  let r =
    run ~exec_config
      (harness ~extra:""
         ~init_body:{|
    int i = 1;
    while (i) { g_ctx = g_ctx + 1; }
  |}
         ~query_body:"")
  in
  check_bool "hang flagged" true (List.mem Report.Infinite_loop (kinds r))

(* --- lock discipline at entry exit ------------------------------------------ *)

let test_lock_held_at_exit () =
  let r =
    run
      (harness ~extra:""
         ~init_body:{|
    NdisAllocateSpinLock(chars + 28);
    NdisAcquireSpinLock(chars + 28);
  |}
         ~query_body:"")
  in
  check_bool "held lock flagged" true (has_message r "still held")

(* --- session mechanics -------------------------------------------------------- *)

let test_workload_sequencing () =
  (* The query phase must run against the post-initialize state. *)
  let r =
    run
      (harness ~extra:""
         ~init_body:{| g_ctx = 7; |}
         ~query_body:{|
    if (g_ctx != 7) {
      int p = 0;
      *(p + 0) = 1;    // would crash if init state were lost
    }
  |})
  in
  check_int "no bugs: state flowed across phases" 0
    (List.length r.Session.r_bugs);
  check_bool "both phases invoked" true (r.Session.r_invocations >= 2)

let test_symbolic_oid_sweep () =
  (* With annotations the OID is symbolic: the magic value is reached. *)
  let src =
    harness ~extra:""
      ~init_body:{| g_ctx = 1; |}
      ~query_body:{|
    if (oid == 0xBAD) {
      int p = 0;
      *(p + 0) = 1;
    }
  |}
  in
  let with_annot = run src in
  check_bool "symbolic OID reaches the magic value" true
    (List.mem Report.Segfault (kinds with_annot));
  let image = Ddt_minicc.Codegen.compile ~name:"t" src in
  let cfg =
    Config.make ~driver_name:"t" ~image ~driver_class:Config.Network
      ~workload:Config.[ W_initialize; W_query ]
      ~use_annotations:false ()
  in
  let without = Ddt.test_driver cfg in
  check_int "concrete OIDs miss it" 0 (List.length without.Session.r_bugs)

let test_timer_workload () =
  (* A timer armed during init fires in the timers phase. *)
  let src =
    harness
      ~extra:{|
  int tick(int ctx) {
    int p = 0;
    *(p + 0) = 1;      // crashes when the timer actually fires
    return 0;
  }
|}
      ~init_body:{|
    NdisMInitializeTimer(chars + 28, tick, 0);
    NdisMSetTimer(chars + 28, 50);
  |}
      ~query_body:""
  in
  let r = run ~workload:Config.[ W_initialize; W_timers ] src in
  check_bool "timer handler ran and crashed" true
    (List.mem Report.Segfault (kinds r))

let test_replay_reproduces () =
  let entry = Ddt_drivers.Corpus.find "rtl8029" in
  let r = Ddt.test_driver (Ddt_drivers.Corpus.config entry) in
  let bug = List.hd r.Session.r_bugs in
  let cfg2 =
    { (Ddt_drivers.Corpus.config entry) with
      Config.replay = Some bug.Report.b_replay }
  in
  let r2 = Ddt.test_driver cfg2 in
  check_bool "replay reproduces the bug" true
    (List.exists
       (fun b -> b.Report.b_key = bug.Report.b_key)
       r2.Session.r_bugs)

let test_coverage_counts_consistent () =
  let entry = Ddt_drivers.Corpus.find "pcnet" in
  let r = Ddt.test_driver (Ddt_drivers.Corpus.config entry) in
  (match List.rev r.Session.r_coverage with
   | [] -> Alcotest.fail "no coverage points"
   | last :: _ ->
       check_bool "blocks covered <= total" true
         (last.Session.cp_blocks <= r.Session.r_total_blocks);
       check_bool "monotone time" true
         (let rec mono = function
            | (a : Session.coverage_point) :: (b :: _ as rest) ->
                a.Session.cp_time <= b.Session.cp_time && mono rest
            | _ -> true
          in
          mono r.Session.r_coverage))

(* --- apicheck rules ------------------------------------------------------- *)

let test_free_length_mismatch () =
  let r =
    run
      (harness ~extra:""
         ~init_body:{|
    int p;
    int status = NdisAllocateMemoryWithTag(&p, 64, TAG);
    if (status != 0) { return 1; }
    NdisFreeMemory(p, 32, 0);     // wrong length
  |}
         ~query_body:"")
  in
  check_bool "length mismatch flagged" true (has_message r "length 32")

let test_register_interrupt_without_attributes () =
  let src = {|
    int chars[8];
    int isr(int ctx) { return 0; }
    int initialize(void) {
      NdisMRegisterInterrupt(9);   // no NdisMSetAttributes first
      return 0;
    }
    int driver_entry(void) {
      chars[0] = initialize;
      chars[4] = isr;
      return NdisMRegisterMiniport(chars);
    }
  |} in
  let r = run ~workload:Config.[ W_initialize ] src in
  check_bool "missing attributes flagged" true
    (has_message r "null miniport context")

(* --- evidence artifacts ------------------------------------------------------ *)

let test_execution_tree () =
  let entry = Ddt_drivers.Corpus.find "rtl8029" in
  let r = Ddt.test_driver (Ddt_drivers.Corpus.config entry) in
  let tree = r.Session.r_tree in
  check_bool "tree covers many states" true (Ddt_trace.Tree.size tree > 20);
  check_bool "tree has depth (fork lineage)" true
    (Ddt_trace.Tree.depth tree >= 3);
  (* Every reported bug's state appears in the tree with a path to a root. *)
  List.iter
    (fun b ->
      let path = Ddt_trace.Tree.path_to_root tree b.Report.b_state_id in
      check_bool "bug state connected to a root" true (List.length path >= 1))
    r.Session.r_bugs

let test_crashdumps () =
  let entry = Ddt_drivers.Corpus.find "rtl8029" in
  let cfg =
    { (Ddt_drivers.Corpus.config entry) with Config.collect_crashdumps = true }
  in
  let r = Ddt.test_driver cfg in
  check_bool "dumps produced for crashes" true (r.Session.r_crashdumps <> []);
  let _, d = List.hd r.Session.r_crashdumps in
  (* The dump round-trips through its binary format. *)
  let d' = Ddt_trace.Crashdump.of_bytes (Ddt_trace.Crashdump.to_bytes d) in
  check_bool "dump roundtrip" true (d' = d);
  check_bool "dump has pages" true (d.Ddt_trace.Crashdump.d_pages <> [])

(* --- §3.6 automated diagnosis ---------------------------------------------- *)

let test_diagnose_low_memory () =
  let entry = Ddt_drivers.Corpus.find "rtl8029" in
  let r = Ddt.test_driver (Ddt_drivers.Corpus.config entry) in
  let leak =
    List.find (fun b -> b.Report.b_kind = Report.Resource_leak)
      r.Session.r_bugs
  in
  let a = Ddt_checkers.Diagnose.analyze leak in
  check_bool "low-memory headline" true
    (a.Ddt_checkers.Diagnose.a_headline
     = "driver leaks resources in low-memory situations")

let test_diagnose_hardware_verdict () =
  let entry = Ddt_drivers.Corpus.find "rtl8029" in
  let r = Ddt.test_driver (Ddt_drivers.Corpus.config entry) in
  let race =
    List.find (fun b -> b.Report.b_kind = Report.Race_condition)
      r.Session.r_bugs
  in
  (* Under a permissive spec the race is reachable with conforming
     hardware... *)
  let a = Ddt_checkers.Diagnose.analyze race in
  check_bool "any hardware" true
    (a.Ddt_checkers.Diagnose.a_hardware = Ddt_checkers.Diagnose.Any_hardware);
  (* ...but if the vendor spec says the interrupt-status register reads 0
     until interrupts are enabled, the ISR's "(status & 3) != 0" entry
     condition is out of spec: the paper's §3.6 malfunction analysis. *)
  let strict =
    { Ddt_checkers.Diagnose.ds_registers = [ ("hw_bar0+0x0", 0, 0) ];
      ds_default = (0, 255) }
  in
  let a' = Ddt_checkers.Diagnose.analyze ~spec:strict race in
  check_bool "malfunction only under the strict spec" true
    (a'.Ddt_checkers.Diagnose.a_hardware
     = Ddt_checkers.Diagnose.Malfunction_only);
  (* A bug with no device dependence at all: the leak. *)
  let leak =
    List.find (fun b -> b.Report.b_kind = Report.Resource_leak)
      r.Session.r_bugs
  in
  let al = Ddt_checkers.Diagnose.analyze ~spec:strict leak in
  check_bool "leak path reads no device registers" true
    (al.Ddt_checkers.Diagnose.a_hardware
     = Ddt_checkers.Diagnose.No_hardware_dependence)

let () =
  Alcotest.run "ddt_core"
    [ ("memcheck rules",
       [ Alcotest.test_case "below-sp access" `Quick test_below_sp_access;
         Alcotest.test_case "use after free" `Quick test_use_after_free;
         Alcotest.test_case "kernel handle deref" `Quick
           test_kernel_handle_deref;
         Alcotest.test_case "write to code" `Quick test_write_to_code ]);
      ("liveness",
       [ Alcotest.test_case "infinite loop" `Quick test_infinite_loop;
         Alcotest.test_case "lock held at exit" `Quick
           test_lock_held_at_exit ]);
      ("session",
       [ Alcotest.test_case "workload sequencing" `Quick
           test_workload_sequencing;
         Alcotest.test_case "symbolic OID sweep" `Quick
           test_symbolic_oid_sweep;
         Alcotest.test_case "timer workload" `Quick test_timer_workload;
         Alcotest.test_case "replay reproduces" `Quick test_replay_reproduces;
         Alcotest.test_case "coverage accounting" `Quick
           test_coverage_counts_consistent ]);
      ("apicheck",
       [ Alcotest.test_case "free length mismatch" `Quick
           test_free_length_mismatch;
         Alcotest.test_case "interrupt before attributes" `Quick
           test_register_interrupt_without_attributes ]);
      ("evidence",
       [ Alcotest.test_case "execution tree" `Quick test_execution_tree;
         Alcotest.test_case "crash dumps" `Quick test_crashdumps ]);
      ("usb",
       [ Alcotest.test_case "usb driver bugs found" `Quick (fun () ->
             let cfg =
               Config.make ~driver_name:"usbnic"
                 ~image:(Ddt_drivers.Usb_nic.image ())
                 ~driver_class:Config.Network ()
             in
             let r = Ddt.test_driver cfg in
             Alcotest.(check bool) "both usb bugs found" true
               (List.length r.Session.r_bugs >= 2);
             Alcotest.(check bool) "all under symbolic interrupt" true
               (List.for_all
                  (fun b -> b.Report.b_with_interrupt)
                  r.Session.r_bugs));
         Alcotest.test_case "fixed usb driver clean" `Quick (fun () ->
             let cfg =
               Config.make ~driver_name:"usbnic-fixed"
                 ~image:(Ddt_drivers.Usb_nic.fixed_image ())
                 ~driver_class:Config.Network ()
             in
             let r = Ddt.test_driver cfg in
             Alcotest.(check int) "clean" 0 (List.length r.Session.r_bugs));
         Alcotest.test_case "usb malfunction verdict" `Quick (fun () ->
             let cfg =
               Config.make ~driver_name:"usbnic"
                 ~image:(Ddt_drivers.Usb_nic.image ())
                 ~driver_class:Config.Network ()
             in
             let r = Ddt.test_driver cfg in
             let corruption =
               List.find
                 (fun b ->
                   String.length b.Report.b_key >= 4
                   && String.sub b.Report.b_key 0 4 = "mem:")
                 r.Session.r_bugs
             in
             let spec =
               { Ddt_checkers.Diagnose.ds_registers =
                   [ ("usb_ep1_len", 0, 63) ];
                 ds_default = (0, 255) }
             in
             Alcotest.(check bool) "malfunction only" true
               ((Ddt_checkers.Diagnose.analyze ~spec corruption)
                  .Ddt_checkers.Diagnose.a_hardware
                = Ddt_checkers.Diagnose.Malfunction_only)) ]);
      ("parallel",
       [ Alcotest.test_case "portfolio fleet merges all bugs" `Quick
           (fun () ->
             let entry = Ddt_drivers.Corpus.find "pcnet" in
             let cfg = Ddt_drivers.Corpus.config entry in
             let single = Ddt.test_driver cfg in
             let fleet =
               Parallel.test_driver ~jobs:2 ~mode:Parallel.Portfolio cfg
             in
             let fleet_keys =
               List.map (fun b -> b.Report.b_key) fleet.Parallel.p_bugs
             in
             List.iter
               (fun b ->
                 Alcotest.(check bool)
                   ("fleet found " ^ b.Report.b_key)
                   true
                   (List.mem b.Report.b_key fleet_keys))
               single.Session.r_bugs);
         Alcotest.test_case "shared frontier deterministic across workers"
           `Quick (fun () ->
             (* The tentpole determinism guard: one session's fork tree
                explored by 1, 2 or 4 cooperating domains must report the
                same bug-key set. *)
             let keys (r : Parallel.result) =
               List.sort compare
                 (List.map (fun b -> b.Report.b_key) r.Parallel.p_bugs)
             in
             List.iter
               (fun name ->
                 let entry = Ddt_drivers.Corpus.find name in
                 let cfg = Ddt_drivers.Corpus.config entry in
                 let base =
                   keys
                     (Parallel.test_driver ~jobs:1
                        ~mode:Parallel.Shared_frontier cfg)
                 in
                 Alcotest.(check bool)
                   (name ^ ": 1-worker run finds bugs")
                   true (base <> []);
                 List.iter
                   (fun jobs ->
                     let r =
                       Parallel.test_driver ~jobs
                         ~mode:Parallel.Shared_frontier cfg
                     in
                     Alcotest.(check (list string))
                       (Printf.sprintf "%s: %d-worker bug keys" name jobs)
                       base (keys r))
                   [ 2; 4 ])
               [ "rtl8029"; "pcnet" ]) ]);
      ("diagnose",
       [ Alcotest.test_case "low-memory classification" `Quick
           test_diagnose_low_memory;
         Alcotest.test_case "hardware verdict" `Quick
           test_diagnose_hardware_verdict ]) ]
