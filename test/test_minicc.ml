(* Tests for ddt_minicc: lexer, parser, typechecker, and compiled-program
   behaviour on the concrete DVM interpreter. *)

open Ddt_dvm
open Ddt_minicc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Compile a translation unit, load it, call [fn] with [args]. Kernel
   imports can be provided as an assoc list name -> OCaml function over
   the argument list. *)
let compile_and_run ?(imports = []) ?(fn = "main") src args =
  let img = Codegen.compile ~name:"test" src in
  let mem = Mem.create () in
  let loaded = Image.load img mem ~base:Layout.image_base in
  let env = Interp.create ~image:loaded mem in
  env.Interp.kcall <-
    (fun n ->
      let name = img.Image.imports.(n) in
      match List.assoc_opt name imports with
      | Some f ->
          let sp = Cpu.get env.Interp.cpu Isa.sp in
          let arg i = Mem.read_u32 mem (sp + (4 * i)) in
          Cpu.set env.Interp.cpu 0 (f arg)
      | None -> failwith ("unexpected import " ^ name));
  Cpu.set env.Interp.cpu Isa.sp Layout.stack_top;
  Interp.call_function env ~addr:(Image.export_addr loaded fn) ~args

let test_arith () =
  let src = {|
    int main(void) {
      return (2 + 3) * 4 - 10 / 2;
    }
  |} in
  check_int "expr" 15 (compile_and_run src [])

let test_params_and_locals () =
  let src = {|
    int add_weighted(int a, int b, int w) {
      int t = a * w;
      int u = b * (10 - w);
      return t + u;
    }
    int main(void) { return add_weighted(3, 5, 7); }
  |} in
  check_int "weighted" ((3 * 7) + (5 * 3)) (compile_and_run src [])

let test_control_flow () =
  let src = {|
    int collatz_steps(int n) {
      int steps = 0;
      while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
      }
      return steps;
    }
    int main(void) { return collatz_steps(27); }
  |} in
  check_int "collatz(27)" 111 (compile_and_run src [])

let test_for_break_continue () =
  let src = {|
    int main(void) {
      int sum = 0;
      int i;
      for (i = 0; i < 100; i = i + 1) {
        if (i == 10) { break; }
        if (i % 2 == 0) { continue; }
        sum = sum + i;
      }
      return sum;   // 1+3+5+7+9
    }
  |} in
  check_int "loop sum" 25 (compile_and_run src [])

let test_arrays () =
  let src = {|
    int fib[20];
    int main(void) {
      fib[0] = 0;
      fib[1] = 1;
      int i;
      for (i = 2; i < 20; i = i + 1) {
        fib[i] = fib[i-1] + fib[i-2];
      }
      return fib[19];
    }
  |} in
  check_int "fib 19" 4181 (compile_and_run src [])

let test_local_byte_array () =
  let src = {|
    int main(void) {
      char buf[8];
      int i;
      for (i = 0; i < 8; i = i + 1) { buf[i] = 65 + i; }
      return buf[0] + buf[7] * 256;
    }
  |} in
  check_int "byte array" (65 + (72 * 256)) (compile_and_run src [])

let test_pointers () =
  let src = {|
    int cell;
    int write_through(int p, int v) { *p = v; return 0; }
    int main(void) {
      write_through(&cell, 1234);
      return cell;
    }
  |} in
  check_int "deref store" 1234 (compile_and_run src [])

let test_const_and_ternary () =
  let src = {|
    const LIMIT = 16;
    const DOUBLED = LIMIT * 2;
    int main(void) {
      int x = 40;
      return x > DOUBLED ? x - DOUBLED : DOUBLED - x;
    }
  |} in
  check_int "ternary" 8 (compile_and_run src [])

let test_logical_ops () =
  let src = {|
    int side_effects;
    int bump(void) { side_effects = side_effects + 1; return 1; }
    int main(void) {
      side_effects = 0;
      int a = 0 && bump();     // short-circuit: bump not called
      int b = 1 || bump();     // short-circuit: bump not called
      int c = 1 && bump();     // called
      return side_effects * 100 + a * 10 + b + c;
    }
  |} in
  check_int "short circuit" 102 (compile_and_run src [])

let test_signed_compare () =
  let src = {|
    int main(void) {
      int neg = 0 - 5;
      if (neg < 0) { return 1; }
      return 0;
    }
  |} in
  check_int "signed lt" 1 (compile_and_run src [])

let test_unsigned_builtin () =
  let src = {|
    int main(void) {
      int big = 0 - 5;             // 0xFFFFFFFB
      int r = 0;
      if (__ltu(3, big)) { r = r + 1; }   // unsigned: 3 < huge
      if (3 < big) { r = r + 10; }        // signed: 3 < -5 is false
      return r;
    }
  |} in
  check_int "unsigned vs signed" 1 (compile_and_run src [])

let test_kernel_imports () =
  let src = {|
    int main(void) {
      int h = OpenThing(42);
      return ReadThing(h, 5);
    }
  |} in
  let imports =
    [ ("OpenThing", fun arg -> arg 0 + 1000);
      ("ReadThing", fun arg -> arg 0 + arg 1) ]
  in
  check_int "imports" 1047 (compile_and_run ~imports src [])

let test_string_literals () =
  let src = {|
    int main(void) {
      int s = "AB";
      return __ldb(s) * 256 + __ldb(s + 1);
    }
  |} in
  check_int "string bytes" ((65 * 256) + 66) (compile_and_run src [])

let test_function_pointer_export () =
  let src = {|
    int handler(int x) { return x * 3; }
    int main(void) { return RegisterHandler(handler); }
  |} in
  let captured = ref 0 in
  let imports = [ ("RegisterHandler", fun arg -> captured := arg 0; 0) ] in
  ignore (compile_and_run ~imports src []);
  check_bool "function address in text" true
    (!captured >= Layout.image_base && !captured < Layout.image_base + 0x10000)

let test_recursion () =
  let src = {|
    int ack(int m, int n) {
      if (m == 0) { return n + 1; }
      if (n == 0) { return ack(m - 1, 1); }
      return ack(m - 1, ack(m, n - 1));
    }
    int main(void) { return ack(2, 3); }
  |} in
  check_int "ackermann" 9 (compile_and_run src [])

let test_typecheck_errors () =
  let expect_error src =
    match Codegen.compile ~name:"bad" src with
    | exception Typecheck.Error _ -> ()
    | exception Parser.Error _ -> ()
    | _ -> Alcotest.fail ("should not compile: " ^ src)
  in
  expect_error "int main(void) { return undefined_var; }";
  expect_error "int main(void) { break; }";
  expect_error "int f(int a) { return a; } int main(void) { return f(1,2); }";
  expect_error "const C = 1; int main(void) { C = 2; return 0; }";
  expect_error "int main(void) { int x[foo]; return 0; }";
  expect_error "int main(void) { 1 = 2; return 0; }"

let test_entry_point_selection () =
  let src = {|
    int helper(void) { return 1; }
    int driver_entry(int ctx) { return 7; }
  |} in
  let img = Codegen.compile ~name:"drv" src in
  let mem = Mem.create () in
  let loaded = Image.load img mem ~base:Layout.image_base in
  check_int "entry is driver_entry"
    (Image.export_addr loaded "driver_entry")
    (loaded.Image.base + img.Image.entry)

(* Property: compiled arithmetic expressions agree with OCaml 32-bit
   evaluation over random operand values. *)
let prop_compiled_arith_matches =
  let gen =
    QCheck.Gen.(
      let* a = int_bound 0xFFFF in
      let* b = int_range 1 0xFFFF in
      let* c = int_bound 0xFFFF in
      return (a, b, c))
  in
  QCheck.Test.make ~count:50 ~name:"compiled arithmetic matches OCaml"
    (QCheck.make gen)
    (fun (a, b, c) ->
      let src =
        Printf.sprintf
          {|
          int main(void) {
            int a = %d; int b = %d; int c = %d;
            return (a * b + c) ^ (a >> 3) ^ (b %% 7) + (c << 2) - (a & b | c);
          }
          |}
          a b c
      in
      let mask = 0xFFFFFFFF in
      (* Mirror of Mini-C precedence: * / %% bind tighter than + -, shifts
         next, then & ^ |. *)
      let expected =
        let mul = (a * b + c) land mask in
        let shr = a lsr 3 in
        let rem = b mod 7 in
        let shl = (c lsl 2) land mask in
        let andor = a land b lor c in
        mul lxor shr lxor ((rem + shl - andor) land mask)
      in
      compile_and_run src [] = expected land mask)

let test_precedence_matrix () =
  (* Spot-check the full precedence ladder in one expression each. *)
  let cases =
    [ ("2 + 3 * 4", 14);
      ("(2 + 3) * 4", 20);
      ("1 << 2 + 1", 8);            (* shift binds looser than + *)
      ("7 & 3 == 3", 1);            (* == binds tighter than &, C-style *)
      ("1 | 2 ^ 2", 1);             (* ^ tighter than | *)
      ("6 / 2 % 2", 1);
      ("1 + 2 < 4 == 1", 1);
      ("~0 & 0xFF", 0xFF);
      ("-3 + 5", 2);
      ("!0 + !5", 1) ]
  in
  List.iter
    (fun (expr, expected) ->
      let src = Printf.sprintf "int main(void) { return %s; }" expr in
      check_int expr expected (compile_and_run src []))
    cases

let test_block_scoping () =
  let src = {|
    int main(void) {
      int x = 1;
      {
        int x = 2;
        { int x = 3; }
      }
      return x;
    }
  |} in
  check_int "outer x survives shadowing" 1 (compile_and_run src [])

let test_comments_and_literals () =
  let src = {|
    // line comment
    /* block
       comment */
    int main(void) {
      int c = 'A';          // char literal
      int n = 'a' - 'A';    /* inline */
      return c + n;
    }
  |} in
  check_int "char literals" (Char.code 'a') (compile_and_run src [])

let test_lexer_errors () =
  let expect_lex_error src =
    match Codegen.compile ~name:"bad" src with
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("should not lex: " ^ src)
  in
  expect_lex_error "int main(void) { return `; }";
  expect_lex_error "int main(void) { int s = \"unterminated; }";
  expect_lex_error "int main(void) { /* unterminated"

let test_parser_errors () =
  let expect_parse_error src =
    match Codegen.compile ~name:"bad" src with
    | exception Parser.Error _ -> ()
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ src)
  in
  expect_parse_error "int main(void) { return 1 + ; }";
  expect_parse_error "int main(void) { if (1) return 0 }";
  expect_parse_error "int main(void { return 0; }";
  expect_parse_error "int 3bad(void) { return 0; }"

let test_for_without_clauses () =
  let src = {|
    int main(void) {
      int n = 0;
      for (;;) {
        n = n + 1;
        if (n == 5) { break; }
      }
      return n;
    }
  |} in
  check_int "for(;;)" 5 (compile_and_run src [])

let test_nested_calls_evaluation () =
  let src = {|
    int twice(int x) { return x * 2; }
    int plus(int a, int b) { return a + b; }
    int main(void) { return plus(twice(3), twice(plus(1, 2))); }
  |} in
  check_int "nested calls" 12 (compile_and_run src [])

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "ddt_minicc"
    [ ("compile-and-run",
       [ Alcotest.test_case "arithmetic" `Quick test_arith;
         Alcotest.test_case "params and locals" `Quick test_params_and_locals;
         Alcotest.test_case "control flow" `Quick test_control_flow;
         Alcotest.test_case "for/break/continue" `Quick test_for_break_continue;
         Alcotest.test_case "arrays" `Quick test_arrays;
         Alcotest.test_case "byte arrays" `Quick test_local_byte_array;
         Alcotest.test_case "pointers" `Quick test_pointers;
         Alcotest.test_case "const and ternary" `Quick test_const_and_ternary;
         Alcotest.test_case "short-circuit" `Quick test_logical_ops;
         Alcotest.test_case "signed compare" `Quick test_signed_compare;
         Alcotest.test_case "unsigned builtins" `Quick test_unsigned_builtin;
         Alcotest.test_case "kernel imports" `Quick test_kernel_imports;
         Alcotest.test_case "string literals" `Quick test_string_literals;
         Alcotest.test_case "function pointers" `Quick
           test_function_pointer_export;
         Alcotest.test_case "recursion" `Quick test_recursion;
         qtest prop_compiled_arith_matches ]);
      ("language",
       [ Alcotest.test_case "precedence matrix" `Quick test_precedence_matrix;
         Alcotest.test_case "block scoping" `Quick test_block_scoping;
         Alcotest.test_case "comments and literals" `Quick
           test_comments_and_literals;
         Alcotest.test_case "for without clauses" `Quick
           test_for_without_clauses;
         Alcotest.test_case "nested calls" `Quick test_nested_calls_evaluation ]);
      ("diagnostics",
       [ Alcotest.test_case "typecheck errors" `Quick test_typecheck_errors;
         Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
         Alcotest.test_case "parser errors" `Quick test_parser_errors;
         Alcotest.test_case "entry point" `Quick test_entry_point_selection ]) ]
