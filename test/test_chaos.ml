(* Chaos harness: deterministic fault injection against full sessions.

   Each test runs every corpus driver twice — fault-free, then with one
   chaos injection enabled — and pins the resilience contract: the
   session completes, the faults surface as quarantined engine incidents
   (never as session death), and the dynamic bug report is identical to
   the fault-free run. Injection points are counted on engine-owned
   atomics, so at jobs = 1 every run injects at exactly the same
   places. *)

module Config = Ddt_core.Config
module Session = Ddt_core.Session
module Governor = Ddt_core.Governor
module Exec = Ddt_symexec.Exec
module Guard = Ddt_symexec.Guard
module Solver = Ddt_solver.Solver
module Report = Ddt_checkers.Report
module Corpus = Ddt_drivers.Corpus

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let quick_cfg (e : Corpus.entry) =
  let cfg = Corpus.config e in
  { cfg with Config.max_total_steps = 60_000; plateau_steps = 50_000 }

let run_with ?governor chaos e =
  let cfg = quick_cfg e in
  let cfg = { cfg with Config.governor = governor } in
  let cfg =
    { cfg with
      Config.exec_config =
        { cfg.Config.exec_config with Exec.jobs = 1; chaos } }
  in
  (* Start every run from a cold query cache so the fault-free and the
     chaos run issue the same uncached solves (injections fire on
     uncached group solves). *)
  Solver.clear_cache ();
  Session.run cfg

let bug_keys (r : Session.result) =
  List.sort compare (List.map (fun b -> b.Report.b_key) r.Session.r_bugs)

(* One fault-free reference run per driver, shared by every test. *)
let baseline_tbl : (string, Session.result) Hashtbl.t = Hashtbl.create 8

let baseline (e : Corpus.entry) =
  match Hashtbl.find_opt baseline_tbl e.Corpus.short with
  | Some r -> r
  | None ->
      let r = run_with None e in
      Hashtbl.replace baseline_tbl e.Corpus.short r;
      r

let count_kind k (r : Session.result) =
  List.length
    (List.filter
       (fun (i : Report.incident) -> i.Guard.inc_kind = k)
       r.Session.r_incidents)

(* --- injected worker crashes ----------------------------------------------- *)

let test_worker_crashes () =
  let total_crashes = ref 0 in
  List.iter
    (fun (e : Corpus.entry) ->
      let base = baseline e in
      let chaos =
        run_with
          (Some
             { Guard.chaos_worker_crash_period = 25;
               chaos_solver_exhaust_period = 0; chaos_pressure_words = 0 })
          e
      in
      check_bool (e.Corpus.short ^ " bug set unchanged by worker crashes")
        true
        (bug_keys base = bug_keys chaos);
      let crashes = count_kind Guard.Worker_crash chaos in
      total_crashes := !total_crashes + crashes;
      (* every injected crash is absorbed by the supervisor: one restart
         per crash incident, and the session still produced a report *)
      check_int (e.Corpus.short ^ " one restart per crash") crashes
        chaos.Session.r_stats.Exec.st_worker_restarts;
      check_bool (e.Corpus.short ^ " finished states nonzero") true
        (chaos.Session.r_finished_states > 0))
    Corpus.all;
  check_bool "crashes were actually injected somewhere" true
    (!total_crashes > 0)

let test_crash_incident_has_replay () =
  let e = Corpus.find "rtl8029" in
  let chaos =
    run_with
      (Some
         { Guard.chaos_worker_crash_period = 25;
           chaos_solver_exhaust_period = 0; chaos_pressure_words = 0 })
      e
  in
  let crashes =
    List.filter
      (fun (i : Report.incident) -> i.Guard.inc_kind = Guard.Worker_crash)
      chaos.Session.r_incidents
  in
  check_bool "at least one crash incident" true (crashes <> []);
  List.iter
    (fun (i : Report.incident) ->
      check_bool "incident names its entry point" true
        (i.Guard.inc_replay.Ddt_trace.Replay.rs_entry <> ""))
    crashes

(* --- injected solver budget exhaustion ------------------------------------- *)

let test_solver_exhaustion () =
  let total_retries = ref 0 in
  let total_incidents = ref 0 in
  List.iter
    (fun (e : Corpus.entry) ->
      let base = baseline e in
      let chaos =
        run_with
          (Some
             { Guard.chaos_worker_crash_period = 0;
               chaos_solver_exhaust_period = 3; chaos_pressure_words = 0 })
          e
      in
      check_bool (e.Corpus.short ^ " bug set unchanged by solver exhaustion")
        true
        (bug_keys base = bug_keys chaos);
      let sv = chaos.Session.r_stats.Exec.st_solver in
      (* a forced first-attempt Unknown must never become a final verdict:
         every exhaustion is retried *)
      check_bool (e.Corpus.short ^ " every exhaustion retried") true
        (sv.Solver.s_retries >= sv.Solver.s_exhaustions
         || sv.Solver.s_retry_recovered > 0);
      total_retries := !total_retries + sv.Solver.s_retries;
      total_incidents := !total_incidents + count_kind Guard.Solver_exhaustion chaos)
    Corpus.all;
  check_bool "escalated retries were issued" true (!total_retries > 0);
  check_bool "exhaustions surfaced as incidents" true (!total_incidents > 0)

(* --- simulated memory pressure --------------------------------------------- *)

let pressure_limits =
  { Governor.soft_states = 0; soft_cow_depth = 0; soft_live_words = 1;
    min_states = 8; max_retire_per_trip = 1 }

let test_memory_pressure () =
  let total_trips = ref 0 in
  List.iter
    (fun (e : Corpus.entry) ->
      let base = baseline e in
      let chaos =
        run_with ~governor:pressure_limits
          (Some
             { Guard.chaos_worker_crash_period = 0;
               chaos_solver_exhaust_period = 0;
               chaos_pressure_words = 50_000_000 })
          e
      in
      check_bool (e.Corpus.short ^ " bug set unchanged under pressure") true
        (bug_keys base = bug_keys chaos);
      total_trips := !total_trips + chaos.Session.r_governor_trips)
    Corpus.all;
  check_bool "governor tripped somewhere" true (!total_trips > 0)

(* --- everything at once ---------------------------------------------------- *)

let test_combined () =
  List.iter
    (fun (e : Corpus.entry) ->
      let base = baseline e in
      let chaos =
        run_with ~governor:pressure_limits
          (Some
             { Guard.chaos_worker_crash_period = 25;
               chaos_solver_exhaust_period = 3;
               chaos_pressure_words = 50_000_000 })
          e
      in
      check_bool (e.Corpus.short ^ " bug set unchanged under combined chaos")
        true
        (bug_keys base = bug_keys chaos);
      check_bool (e.Corpus.short ^ " session produced a report") true
        (chaos.Session.r_finished_states > 0))
    Corpus.all

let () =
  Alcotest.run "ddt_chaos"
    [ ("worker-crash",
       [ Alcotest.test_case "bug sets identical, crashes absorbed" `Quick
           test_worker_crashes;
         Alcotest.test_case "crash incidents carry a replay" `Quick
           test_crash_incident_has_replay ]);
      ("solver-exhaustion",
       [ Alcotest.test_case "bug sets identical, retries recover" `Quick
           test_solver_exhaustion ]);
      ("memory-pressure",
       [ Alcotest.test_case "bug sets identical, governor trips" `Quick
           test_memory_pressure ]);
      ("combined",
       [ Alcotest.test_case "all injections at once" `Quick test_combined ]) ]
