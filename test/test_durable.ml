(* Durability tests: checksummed blob containers, single-state
   snapshot/restore, the persistent solver store, and session
   checkpoint/kill-resume equivalence.

   The contract under test everywhere: a durability artifact that is
   corrupted, truncated or unwritable costs time (cold cache, lost
   checkpoint), never correctness (a changed verdict, a different bug
   set, or an exception escaping a reader). *)

module Expr = Ddt_solver.Expr
module Blob = Ddt_solver.Blob
module Qcache = Ddt_solver.Qcache
module Pstore = Ddt_solver.Pstore
module Solver = Ddt_solver.Solver
module Mem = Ddt_dvm.Mem
module Layout = Ddt_dvm.Layout
module Kstate = Ddt_kernel.Kstate
module Pci = Ddt_kernel.Pci
module Symmem = Ddt_symexec.Symmem
module St = Ddt_symexec.Symstate
module Snapshot = Ddt_symexec.Snapshot
module Config = Ddt_core.Config
module Session = Ddt_core.Session
module Report_json = Ddt_core.Report_json
module Corpus = Ddt_drivers.Corpus

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let qtest t = QCheck_alcotest.to_alcotest t

let tmpdir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ddt_durable_%d_%d" (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir d 0o755;
  d

let is_error = function Error _ -> true | Ok _ -> false

(* --- Blob ------------------------------------------------------------------ *)

let test_blob_roundtrip () =
  let v = ([ 1; 2; 3 ], "hello", Some 4.5) in
  match Blob.decode (Blob.encode v) with
  | Ok v' -> check_bool "round-trips" true (v = v')
  | Error e -> Alcotest.failf "decode failed: %s" e

(* Flipping any single byte — header, length field or payload — must
   yield a clean [Error], never an exception or a silently wrong value. *)
let test_blob_corrupt_every_byte () =
  let s = Blob.encode [ "some"; "payload"; "strings" ] in
  for i = 0 to String.length s - 1 do
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
    match Blob.decode (Bytes.to_string b) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "byte %d flip went undetected" i
  done

let test_blob_truncations () =
  let s = Blob.encode (Array.init 64 string_of_int) in
  for len = 0 to String.length s - 1 do
    if not (is_error (Blob.decode (String.sub s 0 len))) then
      Alcotest.failf "truncation to %d bytes went undetected" len
  done

let test_blob_atomic_write_and_enospc () =
  let dir = tmpdir () in
  let path = Filename.concat dir "v.blob" in
  (match Blob.write_file path "version-1" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "first write failed: %s" e);
  (* Injected disk-full: the write fails, the previous contents
     survive, and no tmp litter is left behind. *)
  Blob.set_chaos_enospc 1;
  check_bool "disk-full write errors" true
    (is_error (Blob.write_file path "version-2"));
  (match Blob.read_file path with
   | Ok s -> check_string "previous contents intact" "version-1" s
   | Error e -> Alcotest.failf "read after failed write: %s" e);
  check_int "no tmp litter" 1 (Array.length (Sys.readdir dir));
  (match Blob.write_file path "version-2" with
   | Ok () -> ()
   | Error e -> Alcotest.failf "write after chaos: %s" e);
  match Blob.read_file path with
  | Ok s -> check_string "new contents" "version-2" s
  | Error e -> Alcotest.failf "final read: %s" e

(* --- Snapshot round-trip --------------------------------------------------- *)

let device () =
  Pci.assign_resources
    { Pci.vendor_id = 1; device_id = 2; revision = 0; bar_sizes = [ 0x1000 ];
      irq_line = 9 }
    ~mmio_base:Layout.mmio_base

(* A state-building recipe the generator can shrink: memory writes,
   forks (chain depth), constraints and replay pins. *)
type op =
  | Write8 of int * int
  | Write32 of int * int
  | WriteSym of int
  | Fork
  | Constrain of int
  | Pin of string * int

let gen_ops =
  QCheck.Gen.(
    list_size (int_range 0 40)
      (frequency
         [ (4, map2 (fun a v -> Write8 (a land 0xFFF, v land 0xFF))
              (int_bound 0xFFF) (int_bound 0xFF));
           (4, map2 (fun a v -> Write32 ((a land 0xFFF) * 4, v))
              (int_bound 0xFFF) (int_bound 0xFFFFFF));
           (2, map (fun a -> WriteSym (a land 0xFFF)) (int_bound 0xFFF));
           (2, return Fork);
           (2, map (fun c -> Constrain (c land 0xFFFF)) (int_bound 0xFFFF));
           (1, map2 (fun n v -> Pin ("in" ^ string_of_int n, v))
              (int_bound 9) (int_bound 0xFFFF)) ]))

let build_state base ops =
  let heap = 0x0060_0000 in
  let mem = Symmem.create ~base ~symdev:None in
  let st = ref (St.create ~id:1 ~mem ~ks:(Kstate.create ~device:(device ()) ())) in
  let next_id = ref 2 in
  List.iter
    (fun op ->
      match op with
      | Write8 (a, v) ->
          Symmem.write_u8 !st.St.mem (heap + a) (Expr.byte v)
      | Write32 (a, v) ->
          Symmem.write_u32 !st.St.mem (heap + a) (Expr.word v)
      | WriteSym a ->
          Symmem.write_u8 !st.St.mem (heap + a)
            (Expr.var (Expr.fresh_var ~name:"m" Expr.W8))
      | Fork ->
          (* keep the child: chain depth grows on both sides *)
          st := St.fork !st ~id:!next_id;
          incr next_id
      | Constrain c ->
          St.add_constraint !st
            (Expr.cmp Expr.Ltu
               (Expr.var (Expr.fresh_var ~name:"c" Expr.W32))
               (Expr.word c))
      | Pin (n, v) ->
          !st.St.replay_inputs <- !st.St.replay_inputs @ [ (n, v) ])
    ops;
  !st.St.pc <- Layout.image_base + 0x40;
  !st.St.entry_name <- "unit";
  !st.St.steps <- List.length ops;
  !st

let states_agree base (a : St.t) (b : St.t) =
  a.St.id = b.St.id && a.St.parent_id = b.St.parent_id
  && a.St.pc = b.St.pc && a.St.regs = b.St.regs
  && a.St.constraints = b.St.constraints
  && a.St.replay_inputs = b.St.replay_inputs
  && a.St.pinned = b.St.pinned && a.St.status = b.St.status
  && a.St.depth = b.St.depth && a.St.entry_name = b.St.entry_name
  && a.St.steps = b.St.steps
  && Symmem.chain_depth a.St.mem = Symmem.chain_depth b.St.mem
  && (ignore base;
      (* the full written window reads back identically *)
      let ok = ref true in
      for a_ = 0x0060_0000 to 0x0060_0000 + 0x1003 do
        if Symmem.read_u8 a.St.mem a_ <> Symmem.read_u8 b.St.mem a_ then
          ok := false
      done;
      !ok)

let test_snapshot_roundtrip =
  QCheck.Test.make ~count:60 ~name:"snapshot/restore round-trips states"
    (QCheck.make gen_ops ~print:(fun ops ->
         string_of_int (List.length ops) ^ " ops"))
    (fun ops ->
      let base = Mem.create () in
      Mem.write_u32 base 0x0060_0000 0xBEEF;
      let st = build_state base ops in
      match Snapshot.restore ~base ~symdev:None (Snapshot.snapshot st) with
      | Error e -> QCheck.Test.fail_reportf "restore failed: %s" e
      | Ok st' -> states_agree base st st')

(* Snapshot restore keeps minting fresh variables above everything the
   snapshot used — a resumed state can never collide with new ones. *)
let test_snapshot_var_counter () =
  let base = Mem.create () in
  let st = build_state base [ Constrain 7; WriteSym 3 ] in
  let s = Snapshot.snapshot st in
  let high = Expr.var_counter_value () in
  Expr.reset_var_counter ();
  match Snapshot.restore ~base ~symdev:None s with
  | Error e -> Alcotest.failf "restore: %s" e
  | Ok _ ->
      check_bool "counter restored above snapshot's" true
        (Expr.var_counter_value () >= high)

let test_snapshot_corrupt_fuzz =
  QCheck.Test.make ~count:120 ~name:"corrupted snapshots fail cleanly"
    QCheck.(pair (make gen_ops) (pair small_nat small_nat))
    (fun (ops, (pos_seed, flip)) ->
      let base = Mem.create () in
      let st = build_state base ops in
      let s = Snapshot.snapshot st in
      let b = Bytes.of_string s in
      let pos = pos_seed mod Bytes.length b in
      Bytes.set b pos
        (Char.chr (Char.code (Bytes.get b pos) lxor (1 + (flip mod 255))));
      is_error (Snapshot.restore ~base ~symdev:None (Bytes.to_string b)))

let test_snapshot_save_load () =
  let dir = tmpdir () in
  let path = Filename.concat dir "st.snap" in
  let base = Mem.create () in
  let st = build_state base [ Write32 (8, 77); Fork; Constrain 3 ] in
  (match Snapshot.save path st with
   | Ok () -> ()
   | Error e -> Alcotest.failf "save: %s" e);
  (match Snapshot.load ~base ~symdev:None path with
   | Ok st' -> check_bool "file round-trip" true (states_agree base st st')
   | Error e -> Alcotest.failf "load: %s" e);
  check_bool "missing file is a clean error" true
    (is_error (Snapshot.load ~base ~symdev:None (path ^ ".nope")))

(* --- Persistent store ------------------------------------------------------ *)

let sat_model vars v = List.map (fun x -> (x, v)) vars

let populate cache n =
  (* [n] distinct Sat entries and [n] distinct Unsat entries. *)
  for i = 1 to n do
    let x = Expr.fresh_var ~name:"x" Expr.W32 in
    let key = [ Expr.cmp Expr.Eq (Expr.var x) (Expr.word i) ] in
    Qcache.Sharded.store_sat cache key (fun v ->
        if v = x then i else 0 [@warning "-27"]);
    ignore (sat_model [ x ] i);
    let y = Expr.fresh_var ~name:"y" Expr.W32 in
    Qcache.Sharded.store_unsat cache
      [ Expr.cmp Expr.Ltu (Expr.var y) (Expr.word 0) ]
  done

let test_pstore_roundtrip () =
  let dir = tmpdir () in
  let c1 = Qcache.Sharded.create () in
  populate c1 8;
  let s1 =
    match Pstore.open_store ~dir ~key:"unit" with
    | Ok s -> s
    | Error e -> Alcotest.failf "open: %s" e
  in
  let written = Pstore.save s1 c1 in
  check_bool "entries written" true (written > 0);
  (* second save: everything already on disk *)
  check_int "idempotent save" 0 (Pstore.save s1 c1);
  let c2 = Qcache.Sharded.create () in
  let s2 =
    match Pstore.open_store ~dir ~key:"unit" with
    | Ok s -> s
    | Error e -> Alcotest.failf "reopen: %s" e
  in
  let loaded = Pstore.load s2 c2 in
  check_int "all entries load" written loaded;
  check_int "cache populated" (Qcache.Sharded.size c1)
    (Qcache.Sharded.size c2);
  (* a warm hit is flagged as persisted *)
  let x = Expr.fresh_var ~name:"x" Expr.W32 in
  let key = [ Expr.cmp Expr.Eq (Expr.var x) (Expr.word 1) ] in
  match Qcache.Sharded.lookup c2 key with
  | Qcache.Miss, _ -> Alcotest.fail "warm lookup missed"
  | _, info -> check_bool "hit is persisted" true info.Qcache.i_persisted

let test_pstore_corruption_only_costs () =
  let dir = tmpdir () in
  let c1 = Qcache.Sharded.create () in
  populate c1 6;
  let s1 =
    match Pstore.open_store ~dir ~key:"unit" with
    | Ok s -> s
    | Error e -> Alcotest.failf "open: %s" e
  in
  let written = Pstore.save s1 c1 in
  (* corrupt one entry, truncate another, drop garbage in the dir *)
  let entries = Sys.readdir (Pstore.dir s1) in
  Array.sort compare entries;
  let f0 = Filename.concat (Pstore.dir s1) entries.(0) in
  let f1 = Filename.concat (Pstore.dir s1) entries.(1) in
  let oc = open_out_gen [ Open_wronly ] 0o644 f0 in
  seek_out oc 10; output_string oc "XXXX"; close_out oc;
  let data = In_channel.with_open_bin f1 In_channel.input_all in
  Out_channel.with_open_bin f1 (fun oc ->
      Out_channel.output_string oc
        (String.sub data 0 (String.length data / 2)));
  Out_channel.with_open_bin
    (Filename.concat (Pstore.dir s1) "garbage.v1")
    (fun oc -> Out_channel.output_string oc "not a blob");
  let c2 = Qcache.Sharded.create () in
  let s2 =
    match Pstore.open_store ~dir ~key:"unit" with
    | Ok s -> s
    | Error e -> Alcotest.failf "reopen: %s" e
  in
  let loaded = Pstore.load s2 c2 in
  check_int "intact entries still load" (written - 2) loaded;
  check_bool "corrupt entries counted" true (Pstore.skipped s2 >= 2)

let test_pstore_disk_full_read_only () =
  let dir = tmpdir () in
  let c1 = Qcache.Sharded.create () in
  populate c1 4;
  let s1 =
    match Pstore.open_store ~dir ~key:"unit" with
    | Ok s -> s
    | Error e -> Alcotest.failf "open: %s" e
  in
  Blob.set_chaos_enospc 1;
  let written = Pstore.save s1 c1 in
  Blob.set_chaos_enospc 0;
  check_bool "store went read-only on first failure" false
    (Pstore.writable s1);
  check_bool "no further writes attempted" true (written < 8)

(* --- Report JSON atomic write --------------------------------------------- *)

let quick_cfg (e : Corpus.entry) =
  let cfg = Corpus.config e in
  { cfg with
    Config.max_total_steps = 60_000; plateau_steps = 50_000;
    exec_config = { cfg.Config.exec_config with Ddt_symexec.Exec.jobs = 1 } }

let fresh_run cfg =
  (* Equalize process-global solver state so in-process runs behave like
     fresh processes (the cross-process case is covered by the make
     check smoke). *)
  Solver.clear_cache ();
  Expr.reset_var_counter ();
  Session.run cfg

let test_report_json_write_file () =
  let dir = tmpdir () in
  let path = Filename.concat dir "report.json" in
  let r = fresh_run (quick_cfg (Corpus.find "audiopci")) in
  let summary = Report_json.of_result r in
  (match Report_json.write_file path summary with
   | Ok () -> ()
   | Error e -> Alcotest.failf "write_file: %s" e);
  check_int "no tmp litter" 1 (Array.length (Sys.readdir dir));
  let doc = In_channel.with_open_bin path In_channel.input_all in
  check_string "document round-trips" (Report_json.to_string summary) doc;
  check_bool "parses back" true (Report_json.of_string doc <> None)

(* --- Session checkpoint / kill-resume -------------------------------------- *)

(* The in-process equivalence triangle on a real corpus driver:
   checkpointing must not perturb the run, and resuming the leftover
   mid-run checkpoint must land on the oracle's exact report. *)
let test_checkpoint_resume_identical () =
  let dir = tmpdir () in
  let ckpt = Filename.concat dir "drv.ckpt" in
  let e = Corpus.find "rtl8029" in
  let oracle = Report_json.to_string (Report_json.of_result (fresh_run (quick_cfg e))) in
  let ck_cfg =
    { (quick_cfg e) with
      Config.checkpoint_every = 1500; checkpoint_path = Some ckpt }
  in
  let with_ck =
    Report_json.to_string (Report_json.of_result (fresh_run ck_cfg))
  in
  check_string "checkpointing does not perturb the run" oracle with_ck;
  check_bool "a mid-run checkpoint was left behind" true (Sys.file_exists ckpt);
  (match Session.checkpoint_driver ckpt with
   | Ok d -> check_string "driver peek" e.Corpus.name d
   | Error err -> Alcotest.failf "checkpoint_driver: %s" err);
  Solver.clear_cache ();
  Expr.reset_var_counter ();
  match Session.resume ck_cfg ~path:ckpt with
  | Error err -> Alcotest.failf "resume: %s" err
  | Ok r ->
      check_string "resumed report is byte-identical" oracle
        (Report_json.to_string (Report_json.of_result r))

let test_checkpoint_corrupt_resume_errors () =
  let dir = tmpdir () in
  let ckpt = Filename.concat dir "drv.ckpt" in
  let e = Corpus.find "audiopci" in
  let ck_cfg =
    { (quick_cfg e) with
      Config.checkpoint_every = 500; checkpoint_path = Some ckpt }
  in
  ignore (fresh_run ck_cfg);
  check_bool "checkpoint exists" true (Sys.file_exists ckpt);
  let data = In_channel.with_open_bin ckpt In_channel.input_all in
  (* corrupt a payload byte *)
  let b = Bytes.of_string data in
  let pos = Bytes.length b / 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x55));
  Out_channel.with_open_bin ckpt (fun oc ->
      Out_channel.output_bytes oc b);
  check_bool "corrupt checkpoint refused" true
    (is_error (Session.resume ck_cfg ~path:ckpt));
  (* truncation *)
  Out_channel.with_open_bin ckpt (fun oc ->
      Out_channel.output_string oc (String.sub data 0 64));
  check_bool "truncated checkpoint refused" true
    (is_error (Session.resume ck_cfg ~path:ckpt));
  (* wrong driver *)
  Out_channel.with_open_bin ckpt (fun oc ->
      Out_channel.output_string oc data);
  let other = quick_cfg (Corpus.find "pcnet") in
  check_bool "wrong-driver checkpoint refused" true
    (is_error (Session.resume other ~path:ckpt))

(* Checkpoint writes hitting a full disk degrade to "no checkpoint",
   never to a failed or different run. *)
let test_checkpoint_disk_full_degrades () =
  let dir = tmpdir () in
  let ckpt = Filename.concat dir "drv.ckpt" in
  let e = Corpus.find "audiopci" in
  let oracle = Report_json.to_string (Report_json.of_result (fresh_run (quick_cfg e))) in
  let ck_cfg =
    { (quick_cfg e) with
      Config.checkpoint_every = 500; checkpoint_path = Some ckpt }
  in
  Blob.set_chaos_enospc 1_000_000;
  let r = fresh_run ck_cfg in
  Blob.set_chaos_enospc 0;
  check_bool "no checkpoint written" false (Sys.file_exists ckpt);
  check_string "run unperturbed by failed checkpoints" oracle
    (Report_json.to_string (Report_json.of_result r))

(* Warm start through the real session path: the second run answers
   queries from the store (persist hits, fewer bit-blasts) and reports
   the same bugs. *)
let test_session_warm_start () =
  let dir = tmpdir () in
  let e = Corpus.find "rtl8029" in
  let cfg = { (quick_cfg e) with Config.store_dir = Some dir } in
  let cold = fresh_run cfg in
  let warm = fresh_run cfg in
  let hits (r : Session.result) =
    r.Session.r_stats.Ddt_symexec.Exec.st_solver
      .Ddt_solver.Solver.s_cache_persist_hits
  in
  let blasts (r : Session.result) =
    r.Session.r_stats.Ddt_symexec.Exec.st_solver
      .Ddt_solver.Solver.s_bitblast_solves
  in
  check_int "cold run has no persist hits" 0 (hits cold);
  check_bool "warm run hits the store" true (hits warm > 0);
  check_bool "warm run bit-blasts no more than cold" true
    (blasts warm <= blasts cold);
  check_string "same report either way"
    (Report_json.to_string (Report_json.of_result cold))
    (Report_json.to_string (Report_json.of_result warm));
  (* --no-persist: same dir, no loads, no hits *)
  let off = fresh_run { cfg with Config.persist = false } in
  check_int "persist off means no store hits" 0 (hits off)

let () =
  Random.self_init ();
  Alcotest.run "ddt_durable"
    [
      ( "blob",
        [ Alcotest.test_case "roundtrip" `Quick test_blob_roundtrip;
          Alcotest.test_case "corrupt every byte" `Quick
            test_blob_corrupt_every_byte;
          Alcotest.test_case "truncations" `Quick test_blob_truncations;
          Alcotest.test_case "atomic write + disk full" `Quick
            test_blob_atomic_write_and_enospc ] );
      ( "snapshot",
        [ qtest test_snapshot_roundtrip;
          Alcotest.test_case "variable counter" `Quick
            test_snapshot_var_counter;
          qtest test_snapshot_corrupt_fuzz;
          Alcotest.test_case "save/load file" `Quick test_snapshot_save_load ] );
      ( "pstore",
        [ Alcotest.test_case "roundtrip" `Quick test_pstore_roundtrip;
          Alcotest.test_case "corruption only costs" `Quick
            test_pstore_corruption_only_costs;
          Alcotest.test_case "disk full makes it read-only" `Quick
            test_pstore_disk_full_read_only ] );
      ( "report-json",
        [ Alcotest.test_case "atomic write_file" `Quick
            test_report_json_write_file ] );
      ( "checkpoint",
        [ Alcotest.test_case "kill-resume byte-identical" `Quick
            test_checkpoint_resume_identical;
          Alcotest.test_case "corrupt/foreign checkpoints refused" `Quick
            test_checkpoint_corrupt_resume_errors;
          Alcotest.test_case "disk-full degrades gracefully" `Quick
            test_checkpoint_disk_full_degrades;
          Alcotest.test_case "warm start via persistent store" `Quick
            test_session_warm_start ] );
    ]
