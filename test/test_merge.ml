(* Tests for dynamic state merging at post-dominators (veritesting).

   Layered the same way as the feature: Pdom unit tests over hand-built
   CFGs, directed fuse/refuse tests driving the merge pool with
   hand-built states, solver-stack regressions (Qcache renaming
   stability over commuted disjunctions, Indep treating ite guards as
   dependence edges), and session-level differential properties — a
   merged run must report exactly the bugs an unmerged run reports, its
   replay scripts must still reproduce, and incremental solver sessions
   must survive the fusions. *)

module Expr = Ddt_solver.Expr
module Solver = Ddt_solver.Solver
module Qcache = Ddt_solver.Qcache
module Indep = Ddt_solver.Indep
module Isa = Ddt_dvm.Isa
module Asm = Ddt_dvm.Asm
module Mem = Ddt_dvm.Mem
module Layout = Ddt_dvm.Layout
module Kstate = Ddt_kernel.Kstate
module Pci = Ddt_kernel.Pci
module Icfg = Ddt_staticx.Icfg
module Pdom = Ddt_staticx.Pdom
module St = Ddt_symexec.Symstate
module Symmem = Ddt_symexec.Symmem
module Merge = Ddt_symexec.Merge
module Exec = Ddt_symexec.Exec
module Config = Ddt_core.Config
module Session = Ddt_core.Session
module Report = Ddt_checkers.Report
module Corpus = Ddt_drivers.Corpus

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let isz = Isa.instr_size

(* --- post-dominators -------------------------------------------------------- *)

let pdom_of src = Pdom.compute (Icfg.build (Asm.assemble ~name:"t" src))

let check_mp msg pd leader expect =
  Alcotest.(check (option int)) msg expect (Pdom.merge_point pd leader)

let test_pdom_diamond () =
  let pd = pdom_of {|
      .entry driver_entry
      .func driver_entry
          jz r1, other
          movi r0, 1
          jmp join
      other:
          movi r0, 2
      join:
          ret
    |} in
  (* blocks: 0 = the branch, 1*isz = then-arm, 3*isz = else-arm,
     4*isz = join *)
  check_mp "branch reconverges at the join" pd 0 (Some (4 * isz));
  check_mp "then-arm also flows to the join" pd isz (Some (4 * isz));
  check_mp "the join block exits the function" pd (4 * isz) None

let test_pdom_nested_diamond () =
  let pd = pdom_of {|
      .entry driver_entry
      .func driver_entry
          jz r1, outer
          jz r2, inner
          movi r0, 1
          jmp ijoin
      inner:
          movi r0, 2
      ijoin:
          jmp join
      outer:
          movi r0, 3
      join:
          ret
    |} in
  check_mp "inner branch meets at the inner join" pd isz (Some (5 * isz));
  check_mp "outer branch meets at the outer join" pd 0 (Some (7 * isz))

let test_pdom_loop_latch () =
  let pd = pdom_of {|
      .entry driver_entry
      .func driver_entry
          movi r1, 4
      head:
          jz r1, done
          sub r1, r1, 1
          jmp head
      done:
          ret
    |} in
  (* The loop-exit branch reconverges where the loop is left: the merge
     scheduler fuses per-iteration forks right after the latch. *)
  check_mp "loop branch meets at the exit block" pd isz (Some (4 * isz))

(* --- the merge pool on hand-built states ------------------------------------ *)

let device () =
  Pci.assign_resources
    { Pci.vendor_id = 1; device_id = 2; revision = 0; bar_sizes = [ 0x1000 ];
      irq_line = 9 }
    ~mmio_base:Layout.mmio_base

(* A forked sibling pair carrying complementary guards over one symbolic
   word, both standing at the merge pc already. Returns the parent's
   constraint cell (the token base) and the two arms. *)
let sibling_pair () =
  let mem = Symmem.create ~base:(Mem.create ()) ~symdev:None in
  let ks = Kstate.create ~device:(device ()) () in
  let parent = St.create ~id:1 ~mem ~ks in
  parent.St.entry_name <- "initialize";
  St.add_constraint parent Expr.tru;
  let base_cs = parent.St.constraints in
  let a = St.fork parent ~id:2 in
  let b = St.fork parent ~id:3 in
  let g =
    Expr.cmp Expr.Eq (Expr.var (Expr.fresh_var Expr.W32)) (Expr.word 0)
  in
  St.add_constraint a g;
  St.add_constraint b (Expr.not_ g);
  a.St.pc <- 0x200;
  b.St.pc <- 0x200;
  (base_cs, a, b)

let open_or_fail pool base a b =
  check_bool "token opened" true
    (Merge.open_token pool ~branch_pc:0x100 ~merge_pc:0x200 ~base a b)

let park_first pool st =
  match Merge.on_arrival pool st with
  | Merge.A_parked o ->
      check_int "first arrival just waits" 0 (List.length o.Merge.mo_requeue)
  | Merge.A_continue -> Alcotest.fail "tagged state must park"

let fold_on_last pool st =
  match Merge.on_arrival pool st with
  | Merge.A_parked o -> o
  | Merge.A_continue -> Alcotest.fail "tagged state must park"

let test_fuse_lifts_to_ite () =
  let pool = Merge.create () in
  let base_cs, a, b = sibling_pair () in
  St.reg_set a 0 (Expr.word 1);
  St.reg_set b 0 (Expr.word 2);
  Symmem.write_u8 a.St.mem 0x3000 (Expr.byte 0xAA);
  open_or_fail pool base_cs a b;
  park_first pool a;
  let o = fold_on_last pool b in
  check_int "one survivor" 1 (List.length o.Merge.mo_requeue);
  check_int "one absorbed" 1 (List.length o.Merge.mo_absorbed);
  let s = List.hd o.Merge.mo_requeue in
  check_bool "survivor's tag popped" true (s.St.tags = []);
  (match St.reg_get s 0 with
   | Expr.Ite _ -> ()
   | e -> Alcotest.failf "r0 not lifted to ite: %s" (Expr.to_string e));
  (match Symmem.read_u8 s.St.mem 0x3000 with
   | Expr.Ite _ -> ()
   | e -> Alcotest.failf "store not lifted to ite: %s" (Expr.to_string e));
  (match s.St.constraints with
   | d :: rest ->
       check_bool "token base kept physically" true (rest == base_cs);
       check_bool "guards disjoined" true
         (match d with Expr.Binop (Expr.Or, _, _) -> true | _ -> false)
   | [] -> Alcotest.fail "fused state has no constraints");
  let merged, ites, _, refused = Merge.stats pool in
  check_int "one fusion" 1 merged;
  check_bool "ites counted" true (ites >= 2);
  check_int "no refusals" 0 refused

let expect_refusal name pool o =
  check_int (name ^ ": both arms survive unfused") 2
    (List.length o.Merge.mo_requeue);
  check_int (name ^ ": nothing absorbed") 0 (List.length o.Merge.mo_absorbed);
  List.iter
    (fun (s : St.t) ->
      check_bool (name ^ ": tags popped") true (s.St.tags = []))
    o.Merge.mo_requeue;
  let merged, _, _, refused = Merge.stats pool in
  check_int (name ^ ": no fusion") 0 merged;
  check_bool (name ^ ": refusal counted") true (refused >= 1)

let test_refuse_divergent_pins () =
  let pool = Merge.create () in
  let base_cs, a, b = sibling_pair () in
  (* one arm carries a replay pin the other does not: fusing would let
     the unpinned arm's models leak into a pinned replay *)
  a.St.pinned <- [ Expr.tru ];
  open_or_fail pool base_cs a b;
  park_first pool a;
  expect_refusal "pins" pool (fold_on_last pool b)

let test_refuse_divergent_kernel_calls () =
  let pool = Merge.create () in
  let base_cs, a, b = sibling_pair () in
  open_or_fail pool base_cs a b;
  (* one arm performed a checker-visible kernel call inside the diamond;
     fusing would fold its hook-event stream into the other path *)
  Kstate.bump_kcall a.St.ks;
  park_first pool a;
  expect_refusal "kcalls" pool (fold_on_last pool b)

let test_refuse_wide_store_divergence () =
  let pool = Merge.create () in
  let base_cs, a, b = sibling_pair () in
  (* past the cost cap: lifting hundreds of bytes to ites would cost
     more than the fork subtree the fusion saves *)
  for i = 0 to 300 do
    Symmem.write_u8 a.St.mem (0x4000 + i) (Expr.byte 1)
  done;
  open_or_fail pool base_cs a b;
  park_first pool a;
  expect_refusal "stores" pool (fold_on_last pool b)

let test_dead_carrier_releases_token () =
  let pool = Merge.create () in
  let base_cs, a, b = sibling_pair () in
  open_or_fail pool base_cs a b;
  park_first pool b;
  (* the other arm crashes without reaching the merge point: its death
     must fold the token and hand the parked sibling back *)
  let o = Merge.note_dead pool a in
  check_int "parked sibling requeued" 1 (List.length o.Merge.mo_requeue);
  check_int "nothing absorbed" 0 (List.length o.Merge.mo_absorbed);
  check_bool "sibling's tag popped" true
    ((List.hd o.Merge.mo_requeue).St.tags = []);
  let merged, _, _, refused = Merge.stats pool in
  check_int "no fusion" 0 merged;
  check_int "no refusal either" 0 refused

(* --- solver stack under merged values --------------------------------------- *)

let test_qcache_commuted_renaming () =
  let q = Qcache.create () in
  let mk () = (Expr.fresh_var Expr.W32, Expr.fresh_var Expr.W32) in
  let vx1, vy1 = mk () in
  let d1 =
    Expr.or1
      (Expr.cmp Expr.Eq (Expr.var vx1) (Expr.word 3))
      (Expr.cmp Expr.Ltu (Expr.var vy1) (Expr.word 7))
  in
  Qcache.store_sat q [ d1 ]
    (fun v -> if v.Expr.id = vx1.Expr.id then 3 else 0);
  (* the same disjunction under fresh names with the disjuncts written
     the other way round — exactly what two workers see when merge-guard
     disjunctions are built in opposite arrival order; renaming alone
     would renumber the two forms differently *)
  let vx2, vy2 = mk () in
  let d2 =
    Expr.or1
      (Expr.cmp Expr.Ltu (Expr.var vy2) (Expr.word 7))
      (Expr.cmp Expr.Eq (Expr.var vx2) (Expr.word 3))
  in
  match Qcache.lookup_info q [ d2 ] with
  | Qcache.Exact_sat m, info ->
      check_bool "hit is a renaming" true info.Qcache.i_renamed;
      check_int "translated model satisfies the twin" 1 (Expr.eval m d2)
  | _ -> Alcotest.fail "commuted renaming of a disjunction must hit exactly"

let test_indep_ite_guard_edges () =
  let v () = Expr.var (Expr.fresh_var Expr.W32) in
  let x = v () and y = v () and z = v () and w = v () in
  let g = Expr.cmp Expr.Eq x (Expr.word 1) in
  (* a merged value: the guard's variable must link the arm variables
     into the same dependence group *)
  let c1 = Expr.cmp Expr.Eq (Expr.ite g y z) (Expr.word 5) in
  let c2 = Expr.cmp Expr.Ltu x (Expr.word 9) in
  let c3 = Expr.cmp Expr.Eq w (Expr.word 0) in
  check_int "guard variable joins the groups" 2
    (List.length (Indep.partition [ c1; c2; c3 ]));
  let slice = Indep.relevant [ c1; c2; c3 ] y in
  check_bool "slice follows the guard edge" true (List.memq c2 slice);
  check_bool "unrelated constraint stays out" true (not (List.memq c3 slice))

(* --- session-level parity ---------------------------------------------------- *)

let quick_cfg ?(merging = true) ?(incr = false) (e : Corpus.entry) =
  let cfg = Corpus.config e in
  let cfg =
    { cfg with Config.max_total_steps = 60_000; plateau_steps = 50_000 }
  in
  { cfg with
    Config.exec_config =
      { cfg.Config.exec_config with
        Exec.jobs = 1; state_merging = merging; solver_incr = incr } }

let bug_keys (r : Session.result) =
  List.sort compare (List.map (fun b -> b.Report.b_key) r.Session.r_bugs)

let test_deeploop_collapses_paths () =
  let e = Corpus.find "deeploop" in
  Solver.clear_cache ();
  let off = Session.run (quick_cfg ~merging:false e) in
  Solver.clear_cache ();
  let on = Session.run (quick_cfg ~merging:true e) in
  check_bool "same bugs" true (bug_keys off = bug_keys on);
  check_int "full coverage while merging" off.Session.r_covered_reachable
    on.Session.r_covered_reachable;
  let s_off = off.Session.r_stats.Exec.st_states_created
  and s_on = on.Session.r_stats.Exec.st_states_created in
  check_bool
    (Printf.sprintf "an order of magnitude fewer states (%d vs %d)" s_on
       s_off)
    true
    (s_on * 10 <= s_off);
  check_bool "fusions happened" true
    (on.Session.r_stats.Exec.st_merged_states > 0);
  check_int "no merge counters when off" 0
    (off.Session.r_stats.Exec.st_merged_states
     + off.Session.r_stats.Exec.st_merge_ites
     + off.Session.r_stats.Exec.st_merge_forks_avoided)

let test_sessions_survive_merges () =
  let e = Corpus.find "deeploop" in
  Solver.clear_cache ();
  let plain = Session.run (quick_cfg ~merging:false e) in
  Solver.clear_cache ();
  let fused = Session.run (quick_cfg ~merging:true ~incr:true e) in
  check_bool "bug parity with sessions enabled" true
    (bug_keys plain = bug_keys fused);
  check_bool "states actually merged" true
    (fused.Session.r_stats.Exec.st_merged_states > 0);
  let sv = fused.Session.r_stats.Exec.st_solver in
  check_bool "sessions pushed frames" true (sv.Solver.s_incr_pushes > 0);
  check_bool "sessions answered queries" true (sv.Solver.s_incr_queries > 0)

(* --- QCheck: randomized drivers, merged vs unmerged -------------------------- *)

(* Random polling drivers in the deeploop mold: a chain of diamonds over
   fresh device words folding two accumulators, optionally ending in a
   guarded null store. Merging must neither invent nor lose bugs, and
   the replay scripts it emits must still reproduce. *)
type spec = {
  sp_arms : (int * int * int) list;  (* per round: shape, mask, constant *)
  sp_bug : bool;
  sp_trigger : int;
}

let source_of spec =
  let buf = Buffer.create 512 in
  Buffer.add_string buf {|
    int chars[8];
    int g;
    int initialize(void) {
      int mmio;
      NdisMMapIoSpace(&mmio, 0);
      int a = 0;
      int b = 1;
      int v;
|};
  List.iter
    (fun (shape, mask, k) ->
      Buffer.add_string buf "      v = *(mmio + 0);\n";
      Buffer.add_string buf
        (match shape with
         | 0 ->
             Printf.sprintf
               "      if (v & %d) { a = a + (v & 0xFF); } else { a = a ^ %d; }\n"
               mask k
         | 1 ->
             Printf.sprintf
               "      if (v & %d) { b = b + %d; } else { b = b ^ (v & 0xFF); }\n"
               mask k
         | _ ->
             Printf.sprintf
               "      if (v & %d) { a = a + b; } else { b = b + %d; }\n" mask
               k))
    spec.sp_arms;
  Buffer.add_string buf "      g = a + b;\n";
  if spec.sp_bug then
    Buffer.add_string buf
      (Printf.sprintf
         {|      int probe = *(mmio + 4);
      if ((probe & 0xFF) == %d) { int z = 0; *z = a; }
|}
         spec.sp_trigger);
  Buffer.add_string buf {|      return 0;
    }
    int driver_entry(void) {
      chars[0] = initialize;
      return NdisMRegisterMiniport(chars);
    }
|};
  Buffer.contents buf

let gen_spec =
  QCheck.Gen.(
    let* rounds = int_range 1 4 in
    let* arms =
      list_repeat rounds
        (triple (int_bound 2) (int_range 1 255) (int_range 1 255))
    in
    let* bug = frequency [ (2, return true); (1, return false) ] in
    let* trigger = int_range 1 254 in
    return { sp_arms = arms; sp_bug = bug; sp_trigger = trigger })

let run_spec ?replay ~merging image =
  Solver.clear_cache ();
  Session.run
    (Config.make ~driver_name:"p" ~image ~driver_class:Config.Network
       ~workload:Config.[ W_initialize ]
       ~jobs:1 ~state_merging:merging ~max_total_steps:20_000
       ~plateau_steps:15_000 ?replay ())

let prop_merge_parity =
  QCheck.Test.make ~count:10
    ~name:"merged and unmerged runs report the same bugs; replays reproduce"
    (QCheck.make gen_spec ~print:source_of)
    (fun spec ->
      let image = Ddt_minicc.Codegen.compile ~name:"p" (source_of spec) in
      let off = run_spec ~merging:false image in
      let on = run_spec ~merging:true image in
      if bug_keys off <> bug_keys on then
        QCheck.Test.fail_reportf "bug sets diverge:@.off: %s@.on:  %s"
          (String.concat ", " (bug_keys off))
          (String.concat ", " (bug_keys on))
      else if spec.sp_bug && on.Session.r_bugs = [] then
        QCheck.Test.fail_reportf "seeded bug not found"
      else
        List.for_all
          (fun b ->
            let r = run_spec ~merging:true ~replay:b.Report.b_replay image in
            List.exists
              (fun b2 -> b2.Report.b_key = b.Report.b_key)
              r.Session.r_bugs
            || QCheck.Test.fail_reportf "replay lost bug %s" b.Report.b_key)
          on.Session.r_bugs)

let () =
  Alcotest.run "ddt_merge"
    [ ("pdom",
       [ Alcotest.test_case "diamond" `Quick test_pdom_diamond;
         Alcotest.test_case "nested diamond" `Quick test_pdom_nested_diamond;
         Alcotest.test_case "loop latch" `Quick test_pdom_loop_latch ]);
      ("pool",
       [ Alcotest.test_case "fuse lifts to ite" `Quick test_fuse_lifts_to_ite;
         Alcotest.test_case "refuse divergent pins" `Quick
           test_refuse_divergent_pins;
         Alcotest.test_case "refuse divergent kernel calls" `Quick
           test_refuse_divergent_kernel_calls;
         Alcotest.test_case "refuse wide store divergence" `Quick
           test_refuse_wide_store_divergence;
         Alcotest.test_case "dead carrier releases token" `Quick
           test_dead_carrier_releases_token ]);
      ("solver",
       [ Alcotest.test_case "qcache commuted renaming" `Quick
           test_qcache_commuted_renaming;
         Alcotest.test_case "indep ite guard edges" `Quick
           test_indep_ite_guard_edges ]);
      ("session",
       [ Alcotest.test_case "deeploop collapses paths" `Quick
           test_deeploop_collapses_paths;
         Alcotest.test_case "sessions survive merges" `Quick
           test_sessions_survive_merges;
         QCheck_alcotest.to_alcotest prop_merge_parity ]) ]
