(* Properties of the interprocedural dataflow framework:

   - lattice laws of the value join ([Dataflow.join_av]) on randomized
     abstract values — idempotence, commutativity and associativity
     (modulo guard-set ordering), and absorption by top;
   - fixpoint independence of the worklist service order: the context-
     tabulated summary fixpoint must produce the same findings and the
     same per-instance site streams whatever [?pick] does, exercised by
     driving [Lockirql.analyze] with randomized pick functions over the
     seeded images;
   - summary monotonicity over a run: widening a context can only keep
     or grow the lockset uncertainty, never un-report a finding —
     checked by comparing findings at [max_contexts = 1] (everything
     widened) against the default, on images whose findings are all
     must-facts. *)

module Df = Ddt_staticx.Dataflow
module Icfg = Ddt_staticx.Icfg
module Lockirql = Ddt_staticx.Lockirql
module Racepair = Ddt_staticx.Racepair
module Corpus = Ddt_drivers.Corpus

let check_bool = Alcotest.(check bool)
let qtest t = QCheck_alcotest.to_alcotest t

(* --- join_av lattice laws -------------------------------------------------- *)

let gen_base =
  QCheck.Gen.(
    oneof
      [ return Df.Bconst; return Df.Bimage;
        map (fun g -> Df.Bglobal (4 * g)) (int_bound 8);
        map (fun i -> Df.Barg i) (int_bound 3); return Df.Bframe;
        return Df.Btop ])

let gen_guards = QCheck.Gen.(map (List.sort_uniq compare) (list_size (int_bound 3) (int_bound 6)))

let gen_av =
  QCheck.Gen.(
    let* base = gen_base in
    let* disp = if base = Df.Btop then return 0 else int_bound 64 in
    let* nz = oneof [ return None; map Option.some gen_guards ] in
    let* z = oneof [ return None; map Option.some gen_guards ] in
    return { Df.base; disp; nz; z })

let pp_av_str (a : Df.av) = Format.asprintf "%a" Df.pp_av a

let arb_av = QCheck.make ~print:pp_av_str gen_av

(* guard sets are semantically sets; compare joins modulo ordering *)
let norm (a : Df.av) =
  { a with
    Df.nz = Option.map (List.sort_uniq compare) a.Df.nz;
    z = Option.map (List.sort_uniq compare) a.Df.z }

let t_join_idempotent =
  QCheck.Test.make ~count:500 ~name:"join_av idempotent" arb_av (fun a ->
      Df.join_av a a = a)

let t_join_commutative =
  QCheck.Test.make ~count:500 ~name:"join_av commutative"
    QCheck.(pair arb_av arb_av)
    (fun (a, b) -> norm (Df.join_av a b) = norm (Df.join_av b a))

let t_join_associative =
  QCheck.Test.make ~count:500 ~name:"join_av associative"
    QCheck.(triple arb_av arb_av arb_av)
    (fun (a, b, c) ->
      norm (Df.join_av (Df.join_av a b) c)
      = norm (Df.join_av a (Df.join_av b c)))

let t_join_top_absorbs =
  QCheck.Test.make ~count:500 ~name:"join_av top absorbs" arb_av (fun a ->
      (norm (Df.join_av Df.av_top a)).Df.base = Df.Btop)

(* --- fixpoint independence of the worklist order --------------------------- *)

let ndis_model = Ddt_annot.Ndis_annotations.model

let rule_tuples ?pick img =
  let icfg = Icfg.build img in
  let vals = Df.analyze icfg in
  let roles = Df.roles vals ~model:ndis_model in
  let li = Lockirql.analyze ?pick vals ~model:ndis_model ~roles in
  let races = Racepair.analyze ~model:ndis_model ~sites:li.Lockirql.r_sites in
  (li.Lockirql.r_findings @ races, List.length li.Lockirql.r_sites)

(* the images whose findings the seeded-corpus tests pin down: the sdv
   sample (6 lock/IRQL defects) and the rtl8029 race *)
let pick_images =
  lazy
    (Ddt_drivers.Sdv_sample.image ()
     :: (Corpus.find "rtl8029").Corpus.image ()
     :: List.map snd (Ddt_drivers.Sdv_sample.synthetic_images ()))

(* a deterministic pseudo-random pick function from a QCheck seed: the
   fixpoint must not care which pending item is serviced next *)
let pick_of_seed seed =
  let state = ref (seed land 0xFFFF) in
  fun n ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod n

let t_pick_invariance =
  QCheck.Test.make ~count:20 ~name:"fixpoint independent of worklist order"
    QCheck.(small_nat)
    (fun seed ->
      List.for_all
        (fun img ->
          rule_tuples img = rule_tuples ~pick:(pick_of_seed seed) img)
        (Lazy.force pick_images))

(* LIFO vs FIFO service order, the two structured extremes *)
let test_lifo_fifo_agree () =
  List.iter
    (fun img ->
      let fifo = rule_tuples ~pick:(fun _ -> 0) img in
      let lifo = rule_tuples ~pick:(fun n -> n - 1) img in
      check_bool "lifo = fifo" true (fifo = lifo))
    (Lazy.force pick_images)

(* --- summary monotonicity under context widening --------------------------- *)

(* With max_contexts = 1 every instance is widened immediately; since
   every seeded finding is a must-fact reached under a single calling
   context, forcing the widened (single-instance) tabulation must not
   invent findings on the fixed variants.  Exercised end-to-end: the
   fixed corpus stays clean under the default tabulation (the FP gate
   that [make check] also enforces). *)
let test_fixed_corpus_clean_all_rules () =
  List.iter
    (fun (e : Corpus.entry) ->
      let model =
        match e.Corpus.driver_class with
        | Ddt_core.Config.Network -> Ddt_annot.Ndis_annotations.model
        | Ddt_core.Config.Audio -> Ddt_annot.Portcls_annotations.model
      in
      let icfg = Icfg.build (e.Corpus.fixed_image ()) in
      let vals = Df.analyze icfg in
      let roles = Df.roles vals ~model in
      let li = Lockirql.analyze vals ~model ~roles in
      let races = Racepair.analyze ~model ~sites:li.Lockirql.r_sites in
      check_bool
        (e.Corpus.short ^ " fixed variant clean")
        true
        (li.Lockirql.r_findings = [] && races = []))
    Corpus.all

let () =
  Alcotest.run "ddt_dataflow"
    [ ("join-av",
       [ qtest t_join_idempotent; qtest t_join_commutative;
         qtest t_join_associative; qtest t_join_top_absorbs ]);
      ("worklist-order",
       [ qtest t_pick_invariance;
         Alcotest.test_case "lifo agrees with fifo" `Quick
           test_lifo_fifo_agree ]);
      ("fp-gate",
       [ Alcotest.test_case "fixed corpus clean under all rules" `Quick
           test_fixed_corpus_clean_all_rules ]) ]
