(* Tests for ddt_dvm: ISA encoding, assembler, interpreter, images. *)

open Ddt_dvm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- ISA encode/decode ------------------------------------------------ *)

let sample_instrs =
  [ Isa.Nop; Isa.Hlt; Isa.Mov (1, 2); Isa.Movi (3, 0xDEADBEEF);
    Isa.Lea (4, 0x1234); Isa.Alu (Isa.Add, 1, 2, 3);
    Isa.Alui (Isa.Shrs, 5, 6, 31); Isa.Cmp (Isa.Lts, 0, 1, 2);
    Isa.Cmpi (Isa.Leu, 7, 8, 100); Isa.Ldw (1, 2, -4 land 0xFFFFFFFF);
    Isa.Ldb (3, 4, 7); Isa.Stw (5, 16, 6); Isa.Stb (7, 1, 8);
    Isa.Push 9; Isa.Pop 10; Isa.Jmp 0x400000; Isa.Jz (1, 0x400100);
    Isa.Jnz (2, 0x400200); Isa.Call 0x400300; Isa.Callr 3; Isa.Ret;
    Isa.Kcall 12; Isa.Cli; Isa.Sti ]

let test_encode_roundtrip () =
  List.iter
    (fun i ->
      let b = Isa.encode i in
      check_int "size" Isa.instr_size (Bytes.length b);
      check_bool (Isa.to_string i) true (Isa.decode b 0 = i))
    sample_instrs

let prop_random_alu_roundtrip =
  let gen =
    QCheck.Gen.(
      let* op = int_bound 10 in
      let* rd = int_bound 15 in
      let* rs1 = int_bound 15 in
      let* imm = map (fun v -> v land 0xFFFFFFFF) int in
      return (op, rd, rs1, imm))
  in
  QCheck.Test.make ~count:300 ~name:"alui encode/decode roundtrip"
    (QCheck.make gen)
    (fun (op, rd, rs1, imm) ->
      let ops =
        [| Isa.Add; Isa.Sub; Isa.Mul; Isa.Divu; Isa.Remu; Isa.And; Isa.Or;
           Isa.Xor; Isa.Shl; Isa.Shru; Isa.Shrs |]
      in
      let i = Isa.Alui (ops.(op), rd, rs1, imm) in
      Isa.decode (Isa.encode i) 0 = i)

(* --- assembler + interpreter ------------------------------------------ *)

let run_program ?(setup = fun _ -> ()) src =
  let img = Asm.assemble ~name:"test" src in
  let mem = Mem.create () in
  let loaded = Image.load img mem ~base:Layout.image_base in
  let env = Interp.create ~image:loaded mem in
  setup env;
  Cpu.set env.Interp.cpu Isa.sp Layout.stack_top;
  let entry = loaded.Image.base + img.Image.entry in
  let r0 = Interp.call_function env ~addr:entry ~args:[] in
  (r0, env, loaded)

let test_factorial () =
  (* Iterative factorial of 10 using the standard calling convention. *)
  let src = {|
    .entry main
    .func main
    main:
      movi r1, 10      ; n
      movi r0, 1       ; acc
    loop:
      jz r1, done
      mul r0, r0, r1
      sub r1, r1, 1
      jmp loop
    done:
      ret
  |} in
  let r0, _, _ = run_program src in
  check_int "10!" 3628800 r0

let test_call_convention () =
  (* add3(a, b, c) = a + b + c, called with (7, 30, 500). *)
  let src = {|
    .entry main
    .func add3
    add3:
      push fp
      mov fp, sp
      ldw r1, [fp+8]
      ldw r2, [fp+12]
      ldw r3, [fp+16]
      add r0, r1, r2
      add r0, r0, r3
      mov sp, fp
      pop fp
      ret
    .func main
    main:
      movi r1, 500
      push r1
      movi r1, 30
      push r1
      movi r1, 7
      push r1
      call add3
      add sp, sp, 12
      ret
  |} in
  let r0, _, _ = run_program src in
  check_int "sum" 537 r0

let test_data_section () =
  let src = {|
    .entry main
    .func main
    main:
      lea r1, table
      ldw r0, [r1+4]
      lea r2, greeting
      ldb r3, [r2+1]
      add r0, r0, r3
      ret
    .data
    table: .word 10, 20, 30
    greeting: .asciz "Hi"
  |} in
  let r0, _, _ = run_program src in
  check_int "20 + 'i'" (20 + Char.code 'i') r0

let test_byte_ops_and_space () =
  let src = {|
    .entry main
    .func main
    main:
      lea r1, buf
      movi r2, 0xAB
      stb [r1+5], r2
      ldb r0, [r1+5]
      ldb r3, [r1+4]
      add r0, r0, r3
      ret
    .data
    buf: .space 16
  |} in
  let r0, _, _ = run_program src in
  check_int "stb/ldb" 0xAB r0

let test_null_deref_faults () =
  let src = {|
    .entry main
    .func main
    main:
      movi r1, 0
      ldw r0, [r1+8]
      ret
  |} in
  (match run_program src with
   | exception Interp.Fault (Interp.Null_deref, _) -> ()
   | _ -> Alcotest.fail "expected null-deref fault")

let test_div_by_zero_faults () =
  let src = {|
    .entry main
    .func main
    main:
      movi r1, 5
      movi r2, 0
      divu r0, r1, r2
      ret
  |} in
  (match run_program src with
   | exception Interp.Fault (Interp.Div_by_zero, _) -> ()
   | _ -> Alcotest.fail "expected div-by-zero fault")

let test_kcall_dispatch () =
  let src = {|
    .entry main
    .func main
    main:
      movi r1, 21
      push r1
      kcall DoubleIt
      add sp, sp, 4
      ret
  |} in
  let img = Asm.assemble ~name:"test" src in
  check_int "one import" 1 (Array.length img.Image.imports);
  Alcotest.(check string) "import name" "DoubleIt" img.Image.imports.(0);
  let mem = Mem.create () in
  let loaded = Image.load img mem ~base:Layout.image_base in
  let env = Interp.create ~image:loaded mem in
  env.Interp.kcall <-
    (fun n ->
      check_int "import index" 0 n;
      let sp = Cpu.get env.Interp.cpu Isa.sp in
      let arg0 = Mem.read_u32 mem sp in
      Cpu.set env.Interp.cpu 0 (2 * arg0));
  Cpu.set env.Interp.cpu Isa.sp Layout.stack_top;
  let r0 =
    Interp.call_function env ~addr:(loaded.Image.base + img.Image.entry)
      ~args:[]
  in
  check_int "doubled" 42 r0

let test_mmio_hook () =
  let src = {|
    .entry main
    .func main
    main:
      movi r1, 0xD0000000
      movi r2, 0x55
      stb [r1+0], r2
      ldb r0, [r1+0]
      ret
  |} in
  let img = Asm.assemble ~name:"test" src in
  let mem = Mem.create () in
  let writes = ref [] in
  Mem.add_mmio mem
    { Mem.mmio_start = Layout.mmio_base; mmio_size = 0x1000;
      mmio_read = (fun off -> if off = 0 then 0x77 else 0);
      mmio_write = (fun off v -> writes := (off, v) :: !writes) };
  let loaded = Image.load img mem ~base:Layout.image_base in
  let env = Interp.create ~image:loaded mem in
  Cpu.set env.Interp.cpu Isa.sp Layout.stack_top;
  let r0 =
    Interp.call_function env ~addr:(loaded.Image.base + img.Image.entry)
      ~args:[]
  in
  check_int "read from device" 0x77 r0;
  check_bool "write reached device" true (!writes = [ (0, 0x55) ])

let test_image_serialization () =
  let src = {|
    .entry main
    .func helper
    helper:
      ret
    .func main
    main:
      call helper
      kcall SomeImport
      ret
    .data
    v: .word main
  |} in
  let img = Asm.assemble ~name:"roundtrip" src in
  let img' = Image.of_bytes (Image.to_bytes img) in
  check_bool "roundtrip equal" true (img = img');
  let s = Image.stats img in
  check_int "functions" 2 s.Image.num_functions;
  check_int "imports" 1 s.Image.num_kernel_imports;
  check_int "code size" (4 * Isa.instr_size) s.Image.code_size

let test_relocation () =
  (* A .word holding a code label must point at the loaded address. *)
  let src = {|
    .entry main
    .func main
    main:
      lea r1, fnptr
      ldw r2, [r1+0]
      call r2
      ret
    .func target
    target:
      movi r0, 99
      ret
    .data
    fnptr: .word target
  |} in
  let r0, _, _ = run_program src in
  check_int "indirect call through data" 99 r0

let test_basic_blocks () =
  let src = {|
    .entry main
    .func main
    main:
      movi r0, 1
      jz r0, a
      movi r0, 2
    a:
      ret
  |} in
  let img = Asm.assemble ~name:"bb" src in
  let blocks = Disasm.basic_block_starts img in
  (* main (0), fall-through after jz (16), target a (24). *)
  check_bool "has entry block" true (List.mem 0 blocks);
  check_bool "has fallthrough" true (List.mem 16 blocks);
  check_bool "has branch target" true (List.mem 24 blocks)

let test_interrupt_nesting () =
  (* Simulate an interrupt: nested call_function mid-run mutates a global
     the main code then observes. *)
  let src = {|
    .entry main
    .func isr
    isr:
      lea r1, flag
      movi r2, 1
      stw [r1+0], r2
      ret
    .func main
    main:
      lea r1, flag
      ldw r0, [r1+0]
      ret
    .data
    flag: .word 0
  |} in
  let img = Asm.assemble ~name:"irq" src in
  let mem = Mem.create () in
  let loaded = Image.load img mem ~base:Layout.image_base in
  let env = Interp.create ~image:loaded mem in
  Cpu.set env.Interp.cpu Isa.sp Layout.stack_top;
  let isr = Image.export_addr loaded "isr" in
  let main = Image.export_addr loaded "main" in
  let fired = ref false in
  env.Interp.hooks.Interp.on_step <-
    (fun pc ->
      if (not !fired) && pc = main then begin
        fired := true;
        (* Deliver the "interrupt" before main's first instruction. *)
        ignore (Interp.call_function env ~addr:isr ~args:[])
      end);
  let r0 = Interp.call_function env ~addr:main ~args:[] in
  check_int "ISR ran first" 1 r0

let test_asm_errors () =
  let expect_error src =
    match Asm.assemble ~name:"bad" src with
    | exception Asm.Error _ -> ()
    | _ -> Alcotest.fail ("should not assemble: " ^ src)
  in
  expect_error "bogus r0, r1";                      (* unknown mnemonic *)
  expect_error "movi r99, 1";                       (* bad register *)
  expect_error "jmp nowhere";                       (* undefined symbol *)
  expect_error "a: nop\na: nop";                    (* duplicate label *)
  expect_error ".data\nmovi r0, 1";                 (* code in .data *)
  expect_error ".word 5";                           (* data in .text *)
  expect_error "ldw r0, [r1+x]"                     (* bad offset *)

let test_mem_snapshot () =
  let m = Mem.create () in
  Mem.write_u32 m 0x1000 0xABCD;
  let s = Mem.snapshot m in
  Mem.write_u32 m 0x1000 0x1111;
  check_int "snapshot isolated" 0xABCD (Mem.read_u32 s 0x1000);
  check_int "original updated" 0x1111 (Mem.read_u32 m 0x1000)

let test_mem_cstring () =
  let m = Mem.create () in
  Mem.write_cstring m 0x2000 "Hello";
  Alcotest.(check string) "roundtrip" "Hello" (Mem.read_cstring m 0x2000);
  check_int "terminator" 0 (Mem.read_u8 m 0x2005)

let test_disasm_listing () =
  let img = Asm.assemble ~name:"lst" {|
    .entry main
    .func main
    main:
      movi r0, 42
      ret
  |} in
  let listing = Format.asprintf "%a" Disasm.pp_listing img in
  let has needle =
    let n = String.length needle and l = String.length listing in
    let rec go i =
      i + n <= l && (String.sub listing i n = needle || go (i + 1))
    in
    go 0
  in
  check_bool "function label shown" true (has "main:");
  check_bool "instruction shown" true (has "movi r0, 42");
  check_bool "ret shown" true (has "ret")

(* Property: any sequence of valid instructions survives the image
   encode -> load -> disassemble pipeline intact. *)
let prop_image_disasm_roundtrip =
  let gen_instr =
    QCheck.Gen.(
      let reg = int_bound 15 in
      let imm = map (fun v -> v land 0xFFFFFFFF) int in
      oneof
        [ return Isa.Nop;
          map2 (fun a b -> Isa.Mov (a, b)) reg reg;
          map2 (fun a v -> Isa.Movi (a, v)) reg imm;
          (let* a = reg and* b = reg and* c = reg in
           return (Isa.Alu (Isa.Xor, a, b, c)));
          map2 (fun a v -> Isa.Cmpi (Isa.Leu, a, 0, v)) reg imm;
          map2 (fun a v -> Isa.Ldw (a, 1, v)) reg (int_bound 0xFFF);
          map (fun v -> Isa.Kcall (v land 0xFF)) imm;
          return Isa.Ret ])
  in
  QCheck.Test.make ~count:100 ~name:"image encode/disasm roundtrip"
    (QCheck.make QCheck.Gen.(list_size (int_range 1 40) gen_instr))
    (fun instrs ->
      let text = Buffer.create 256 in
      List.iter (fun i -> Buffer.add_bytes text (Isa.encode i)) instrs;
      let img =
        { Image.name = "prop"; text = Buffer.to_bytes text;
          data = Bytes.empty; bss_size = 0; entry = 0; imports = [||];
          exports = []; relocs = []; funcs = [ ("f", 0) ] }
      in
      let img' = Image.of_bytes (Image.to_bytes img) in
      List.map snd (Disasm.disassemble img') = instrs)

let qtest t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "ddt_dvm"
    [ ("isa",
       [ Alcotest.test_case "encode/decode samples" `Quick test_encode_roundtrip;
         qtest prop_random_alu_roundtrip;
         qtest prop_image_disasm_roundtrip ]);
      ("interp",
       [ Alcotest.test_case "factorial" `Quick test_factorial;
         Alcotest.test_case "calling convention" `Quick test_call_convention;
         Alcotest.test_case "data section" `Quick test_data_section;
         Alcotest.test_case "byte ops" `Quick test_byte_ops_and_space;
         Alcotest.test_case "null deref fault" `Quick test_null_deref_faults;
         Alcotest.test_case "div by zero fault" `Quick test_div_by_zero_faults;
         Alcotest.test_case "kcall dispatch" `Quick test_kcall_dispatch;
         Alcotest.test_case "mmio hook" `Quick test_mmio_hook;
         Alcotest.test_case "interrupt nesting" `Quick test_interrupt_nesting ]);
      ("image",
       [ Alcotest.test_case "serialization roundtrip" `Quick
           test_image_serialization;
         Alcotest.test_case "relocation" `Quick test_relocation;
         Alcotest.test_case "basic blocks" `Quick test_basic_blocks ]);
      ("tools",
       [ Alcotest.test_case "assembler diagnostics" `Quick test_asm_errors;
         Alcotest.test_case "memory snapshot" `Quick test_mem_snapshot;
         Alcotest.test_case "c strings" `Quick test_mem_cstring;
         Alcotest.test_case "disassembly listing" `Quick test_disasm_listing ]) ]
