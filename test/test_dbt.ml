(* Differential tests for DBT block compilation.

   The contract under test: executing through compiled superblocks is
   observationally identical to single-step interpretation — same
   registers, same memory, same fault kind and pc, same step and fuel
   accounting — for the concrete engine ([Dbt]) and, at the bug-report
   level, for the symbolic engine ([Sdbt] via full corpus sessions). *)

open Ddt_dvm
module Config = Ddt_core.Config
module Session = Ddt_core.Session
module Exec = Ddt_symexec.Exec
module Guard = Ddt_symexec.Guard
module Solver = Ddt_solver.Solver
module Report = Ddt_checkers.Report
module Corpus = Ddt_drivers.Corpus

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- harness: run a raw instruction sequence both ways ------------------- *)

(* Build a loadable image straight from instructions. Control-transfer
   immediates are image-relative here and entered into the reloc list,
   exactly as the assembler emits them — so [Disasm.basic_block_starts]
   sees in-range leaders and the block plan splits at jump targets. *)
let image_of_instrs name instrs =
  let text = Buffer.create 64 in
  let relocs = ref [] in
  List.iteri
    (fun idx i ->
      (match i with
       | Isa.Jmp _ | Isa.Jz _ | Isa.Jnz _ | Isa.Call _ ->
           relocs := ((idx * Isa.instr_size) + Isa.imm_field_offset) :: !relocs
       | _ -> ());
      Buffer.add_bytes text (Isa.encode i))
    instrs;
  { Image.name; text = Buffer.to_bytes text; data = Bytes.create 0;
    bss_size = 0; entry = 0; imports = [||]; exports = [];
    relocs = !relocs; funcs = [ (name, 0) ] }

(* Deterministic initial state shared by both runs: registers seeded
   from the generated ints (every third one becomes a heap pointer so
   loads and stores mostly hit mapped memory), a stripe of recognizable
   heap words, sp at the top of the stack, return sentinel pushed. *)
let setup_env ?(fuel = 400) loaded mem seeds =
  let env = Interp.create ~fuel ~image:loaded mem in
  for i = 0 to 127 do
    Mem.write_u32 mem
      (Layout.heap_base + (4 * i))
      ((i * 2654435761) land 0xFFFFFFFF)
  done;
  List.iteri
    (fun r v ->
      if r < 14 then
        let v =
          if v mod 3 = 0 then Layout.heap_base + (abs v mod 0x100) * 4
          else v land 0xFFFFFFFF
        in
        Cpu.set env.Interp.cpu r v)
    seeds;
  Cpu.set env.Interp.cpu Isa.sp Layout.stack_top;
  Interp.push env 0 Layout.return_sentinel;
  env.Interp.cpu.Cpu.pc <- loaded.Image.text_start;
  env

type outcome =
  | O_stop of Interp.stop
  | O_fault of Interp.fault * int
  | O_exn of string
      (* escaped engine crash, e.g. Invalid_argument from a wild jump
         into data that decodes with garbage register bytes — both
         engines single-step such code in the interpreter *)

let finish env run_fn =
  let o =
    match run_fn env with
    | s -> O_stop s
    | exception Interp.Fault (f, pc) -> O_fault (f, pc)
    | exception e -> O_exn (Printexc.to_string e)
  in
  let probe base = Bytes.to_string (Mem.read_bytes env.Interp.mem base 512) in
  ( o,
    env.Interp.steps,
    env.Interp.fuel,
    Array.to_list env.Interp.cpu.Cpu.regs,
    env.Interp.cpu.Cpu.pc,
    env.Interp.cpu.Cpu.halted,
    probe Layout.heap_base,
    probe (Layout.stack_top - 512) )

let run_both ?fuel instrs seeds =
  let go run_of =
    let img = image_of_instrs "prop" instrs in
    let mem = Mem.create () in
    let loaded = Image.load img mem ~base:Layout.image_base in
    let env = setup_env ?fuel loaded mem seeds in
    finish env (run_of loaded)
  in
  let interp = go (fun _ -> Interp.run) in
  let compiled =
    go (fun loaded ->
        let d = Dbt.create ~threshold:0 loaded in
        Dbt.compile_all d;
        Dbt.run d)
  in
  (interp, compiled)

let show_outcome (o, steps, fuel, regs, pc, halted, _, _) =
  let head =
    match o with
    | O_stop Interp.Sentinel -> "sentinel"
    | O_stop Interp.Halted -> "halted"
    | O_stop Interp.Out_of_fuel -> "out-of-fuel"
    | O_fault (f, pc) ->
        Printf.sprintf "fault %s @ 0x%x" (Interp.string_of_fault f) pc
    | O_exn e -> "exn " ^ e
  in
  Printf.sprintf "%s steps=%d fuel=%d pc=0x%x halted=%b regs=[%s]" head steps
    fuel pc halted
    (String.concat ";" (List.map (Printf.sprintf "0x%x") regs))

(* --- QCheck: random programs ---------------------------------------------- *)

let aluops =
  [| Isa.Add; Isa.Sub; Isa.Mul; Isa.Divu; Isa.Remu; Isa.And; Isa.Or;
     Isa.Xor; Isa.Shl; Isa.Shru; Isa.Shrs |]

let cmpops = [| Isa.Eq; Isa.Ne; Isa.Ltu; Isa.Leu; Isa.Lts; Isa.Les |]

(* Register operands stay below 10 so sp/fp survive for the stack ops;
   [n] bounds jump targets to the program (image-relative, aligned). *)
let gen_instr n =
  QCheck.Gen.(
    let reg = int_bound 9 in
    let target = map (fun k -> k * Isa.instr_size) (int_bound n) in
    frequency
      [ (3,
         let* op = int_bound 10 in
         let* rd = reg and* rs1 = reg and* rs2 = reg in
         return (Isa.Alu (aluops.(op), rd, rs1, rs2)));
        (3,
         let* op = int_bound 10 in
         let* rd = reg and* rs1 = reg in
         let* imm = frequency [ (6, int_bound 1000); (1, return 0) ] in
         return (Isa.Alui (aluops.(op), rd, rs1, imm)));
        (2,
         let* op = int_bound 5 in
         let* rd = reg and* rs1 = reg and* rs2 = reg in
         return (Isa.Cmp (cmpops.(op), rd, rs1, rs2)));
        (2,
         let* op = int_bound 5 in
         let* rd = reg and* rs1 = reg and* imm = int_bound 1000 in
         return (Isa.Cmpi (cmpops.(op), rd, rs1, imm)));
        (2,
         let* rd = reg and* rs = reg in
         return (Isa.Mov (rd, rs)));
        (3,
         let* rd = reg in
         let* v =
           frequency
             [ (2, map (fun k -> Layout.heap_base + (4 * k)) (int_bound 100));
               (2, int_bound 0xFFFF); (1, return 0) ]
         in
         return (Isa.Movi (rd, v)));
        (3,
         let* rd = reg and* b = reg and* off = int_bound 16 in
         return (Isa.Ldw (rd, b, 4 * off)));
        (3,
         let* b = reg and* off = int_bound 16 and* rs = reg in
         return (Isa.Stw (b, 4 * off, rs)));
        (1,
         let* rd = reg and* b = reg and* off = int_bound 64 in
         return (Isa.Ldb (rd, b, off)));
        (1,
         let* b = reg and* off = int_bound 64 and* rs = reg in
         return (Isa.Stb (b, off, rs)));
        (2, map (fun r -> Isa.Push r) reg);
        (2, map (fun r -> Isa.Pop r) reg);
        (2,
         let* r = reg and* t = target in
         return (Isa.Jz (r, t)));
        (1,
         let* r = reg and* t = target in
         return (Isa.Jnz (r, t)));
        (1, map (fun t -> Isa.Jmp t) target);
        (1, return Isa.Nop) ])

let gen_program =
  QCheck.Gen.(
    let* n = int_range 1 24 in
    let* body = list_repeat n (gen_instr n) in
    let* seeds = list_repeat 14 int in
    return (body @ [ Isa.Ret ], seeds))

let prop_differential =
  QCheck.Test.make ~count:500
    ~name:"compiled and interpreted runs are observationally identical"
    (QCheck.make gen_program
       ~print:(fun (instrs, _) ->
         String.concat "\n" (List.map Isa.to_string instrs)))
    (fun (instrs, seeds) ->
      let interp, compiled = run_both instrs seeds in
      if interp = compiled then true
      else
        QCheck.Test.fail_reportf "interp:   %s@.compiled: %s"
          (show_outcome interp) (show_outcome compiled))

(* Tight loops must agree on where fuel runs out, not just that it does. *)
let prop_fuel_exact =
  QCheck.Test.make ~count:100 ~name:"fuel exhaustion is step-exact"
    (QCheck.make
       QCheck.Gen.(
         let* fuel = int_range 1 50 in
         let* seeds = list_repeat 14 int in
         return (fuel, seeds)))
    (fun (fuel, seeds) ->
      (* r0 counts up forever: jmp back to the loop head. *)
      let instrs =
        [ Isa.Movi (0, 0); Isa.Alui (Isa.Add, 0, 0, 1);
          Isa.Jmp Isa.instr_size ]
      in
      let interp, compiled = run_both ~fuel instrs seeds in
      interp = compiled)

(* --- directed cases -------------------------------------------------------- *)

let run_asm_both src =
  let go run_of =
    let img = Asm.assemble ~name:"t" src in
    let mem = Mem.create () in
    let loaded = Image.load img mem ~base:Layout.image_base in
    let env = setup_env loaded mem [] in
    finish env (run_of loaded)
  in
  (go (fun _ -> Interp.run),
   go (fun loaded ->
       let d = Dbt.create ~threshold:0 loaded in
       Dbt.compile_all d;
       Dbt.run d))

let test_factorial_parity () =
  let interp, compiled =
    run_asm_both {|
      .entry main
      .func main
      main:
        movi r1, 10
        movi r0, 1
      loop:
        jz r1, done
        mul r0, r0, r1
        sub r1, r1, 1
        jmp loop
      done:
        ret
    |}
  in
  check_bool "factorial states equal" true (interp = compiled);
  let _, _, _, regs, _, _, _, _ = compiled in
  check_int "10! in r0" 3628800 (List.nth regs 0)

let test_fault_parity () =
  List.iter
    (fun src ->
      let interp, compiled = run_asm_both src in
      if interp <> compiled then
        Alcotest.failf "fault divergence:\ninterp:   %s\ncompiled: %s"
          (show_outcome interp) (show_outcome compiled))
    [ (* null dereference *)
      {|
        .entry main
        .func main
        main:
          movi r1, 0
          ldw r0, [r1+8]
          ret
      |};
      (* division by zero (register divisor) *)
      {|
        .entry main
        .func main
        main:
          movi r1, 0
          movi r2, 7
          divu r0, r2, r1
          ret
      |};
      (* stack overflow in a push loop *)
      {|
        .entry main
        .func main
        main:
          movi r0, 1
        loop:
          push r0
          jmp loop
      |};
      (* hlt inside a hot block *)
      {|
        .entry main
        .func main
        main:
          movi r0, 42
          hlt
      |} ]

(* With a client hook installed the dispatch loop must stay on the
   interpreter: every instruction still produces its on_step event. *)
let test_hooks_force_interpretation () =
  let img = Asm.assemble ~name:"t" {|
    .entry main
    .func main
    main:
      movi r1, 5
      movi r0, 0
    loop:
      jz r1, done
      add r0, r0, r1
      sub r1, r1, 1
      jmp loop
    done:
      ret
  |} in
  let mem = Mem.create () in
  let loaded = Image.load img mem ~base:Layout.image_base in
  let env = setup_env loaded mem [] in
  let stepped = ref 0 in
  env.Interp.hooks.Interp.on_step <- (fun _ -> incr stepped);
  let d = Dbt.create ~threshold:0 loaded in
  Dbt.compile_all d;
  check_bool "sentinel" true (Dbt.run d env = Interp.Sentinel);
  check_int "every step hooked" env.Interp.steps !stepped;
  check_bool "hook detection" false (Interp.hooks_are_default env.Interp.hooks)

let test_warmup_threshold () =
  (* Below the threshold nothing compiles; the loop's 21st entry tips
     the block over and the remainder runs compiled. End state must be
     identical to pure interpretation either way. *)
  let src = {|
    .entry main
    .func main
    main:
      movi r1, 100
      movi r0, 0
    loop:
      jz r1, done
      add r0, r0, r1
      sub r1, r1, 1
      jmp loop
    done:
      ret
  |} in
  let go threshold =
    let img = Asm.assemble ~name:"t" src in
    let mem = Mem.create () in
    let loaded = Image.load img mem ~base:Layout.image_base in
    let env = setup_env loaded mem [] in
    let d = Dbt.create ~threshold loaded in
    let stop = Dbt.run d env in
    (stop, env.Interp.steps, Cpu.get env.Interp.cpu 0, (Dbt.stats d).Dbt.db_blocks_compiled)
  in
  let s_hot, steps_hot, r0_hot, compiled_hot = go 20 in
  let s_cold, steps_cold, r0_cold, compiled_cold = go 1_000_000 in
  check_bool "stop equal" true (s_hot = s_cold);
  check_int "steps equal" steps_cold steps_hot;
  check_int "sum equal" r0_cold r0_hot;
  check_bool "warm run compiled something" true (compiled_hot > 0);
  check_int "cold run compiled nothing" 0 compiled_cold

let test_superblock_chaining () =
  (* Straight-line blocks linked by direct jumps chain into one
     superblock; the stats must show chained constituents. *)
  let img = Asm.assemble ~name:"t" {|
    .entry main
    .func main
    main:
      movi r0, 1
      jmp b1
    b1:
      add r0, r0, r0
      jmp b2
    b2:
      add r0, r0, r0
      ret
  |} in
  let mem = Mem.create () in
  let loaded = Image.load img mem ~base:Layout.image_base in
  let env = setup_env loaded mem [] in
  let d = Dbt.create ~threshold:0 loaded in
  Dbt.compile_all d;
  check_bool "sentinel" true (Dbt.run d env = Interp.Sentinel);
  check_int "result" 4 (Cpu.get env.Interp.cpu 0);
  check_bool "chained constituents counted" true
    ((Dbt.stats d).Dbt.db_superblocks_chained > 0)

let test_call_function_parity () =
  let src = {|
    .entry main
    .func main
    main:
      push fp
      mov fp, sp
      ldw r1, [fp+8]
      ldw r2, [fp+12]
      add r0, r1, r2
      mov sp, fp
      pop fp
      ret
  |} in
  let go use_dbt =
    let img = Asm.assemble ~name:"t" src in
    let mem = Mem.create () in
    let loaded = Image.load img mem ~base:Layout.image_base in
    let env = Interp.create ~image:loaded mem in
    Cpu.set env.Interp.cpu Isa.sp Layout.stack_top;
    let addr = loaded.Image.base + img.Image.entry in
    if use_dbt then begin
      let d = Dbt.create ~threshold:0 loaded in
      Dbt.compile_all d;
      Dbt.call_function d env ~addr ~args:[ 19; 23 ]
    end
    else Interp.call_function env ~addr ~args:[ 19; 23 ]
  in
  check_int "interp sum" 42 (go false);
  check_int "compiled sum" 42 (go true)

(* --- corpus parity: symbolic engine, dbt on vs off ------------------------- *)

let quick_cfg ?chaos ~dbt (e : Corpus.entry) =
  let cfg = Corpus.config e in
  let cfg =
    { cfg with Config.max_total_steps = 60_000; plateau_steps = 50_000 }
  in
  { cfg with
    Config.exec_config =
      { cfg.Config.exec_config with Exec.jobs = 1; dbt; chaos } }

let bug_keys (r : Session.result) =
  List.sort compare (List.map (fun b -> b.Report.b_key) r.Session.r_bugs)

(* The symbolic engine's concrete-register cache: a hot all-concrete
   loop runs through the scratch arrays and only spills to expressions
   at the symbolic guard. If a spill were missed or stale, the guard
   below would be built from wrong register values and the seeded crash
   would move or vanish — so bug-for-bug parity with the interpreted run
   is the differential oracle. *)
let test_sdbt_rcache_parity () =
  let src = {|
    int chars[8];
    int g;
    int initialize(void) {
      int mmio;
      NdisMMapIoSpace(&mmio, 0);
      int acc = 1;
      int i;
      for (i = 0; i < 64; i = i + 1) {
        acc = ((acc + (acc & 0xFFFF)) ^ (i + 3)) & 0xFFFFFF;
      }
      g = acc;
      int v = *(mmio + 0);
      if ((v & 0xFF) == (acc & 0xFF)) { int z = 0; *z = acc; }
      return 0;
    }
    int driver_entry(void) {
      chars[0] = initialize;
      return NdisMRegisterMiniport(chars);
    }
  |} in
  let image = Ddt_minicc.Codegen.compile ~name:"rc" src in
  let go dbt =
    Solver.clear_cache ();
    Session.run
      (Ddt_core.Config.make ~driver_name:"rc" ~image
         ~driver_class:Config.Network
         ~workload:Config.[ W_initialize ]
         ~jobs:1 ~dbt ~max_total_steps:60_000 ())
  in
  let off = go false in
  let on = go true in
  check_bool "rcache leg still finds the seeded crash" true
    (List.exists
       (fun b -> b.Report.b_kind = Report.Segfault)
       on.Session.r_bugs);
  check_bool "same bugs with the register cache" true
    (bug_keys off = bug_keys on);
  check_int "same invocations" off.Session.r_invocations
    on.Session.r_invocations;
  check_bool "the hot loop actually compiled" true
    (on.Session.r_stats.Exec.st_dbt_blocks > 0)

let parity_case ?chaos (e : Corpus.entry) () =
  Solver.clear_cache ();
  let off = Session.run (quick_cfg ?chaos ~dbt:false e) in
  Solver.clear_cache ();
  let on = Session.run (quick_cfg ?chaos ~dbt:true e) in
  check_bool (e.Corpus.short ^ ": same bugs dbt on/off") true
    (bug_keys off = bug_keys on);
  check_int
    (e.Corpus.short ^ ": same invocations")
    off.Session.r_invocations on.Session.r_invocations;
  check_int
    (e.Corpus.short ^ ": no dbt counters when off")
    0 off.Session.r_stats.Exec.st_dbt_blocks

let chaos_spec =
  { Guard.chaos_worker_crash_period = 25; chaos_solver_exhaust_period = 3;
    chaos_pressure_words = 50_000_000 }

let () =
  let corpus_cases =
    List.concat_map
      (fun (e : Corpus.entry) ->
        [ Alcotest.test_case e.Corpus.short `Quick (parity_case e);
          Alcotest.test_case (e.Corpus.short ^ " +chaos") `Quick
            (parity_case ~chaos:chaos_spec e) ])
      Corpus.all
  in
  Alcotest.run "ddt_dbt"
    [ ("differential",
       [ QCheck_alcotest.to_alcotest prop_differential;
         QCheck_alcotest.to_alcotest prop_fuel_exact ]);
      ("directed",
       [ Alcotest.test_case "factorial parity" `Quick test_factorial_parity;
         Alcotest.test_case "fault parity" `Quick test_fault_parity;
         Alcotest.test_case "hooks force interpretation" `Quick
           test_hooks_force_interpretation;
         Alcotest.test_case "warmup threshold" `Quick test_warmup_threshold;
         Alcotest.test_case "superblock chaining" `Quick
           test_superblock_chaining;
         Alcotest.test_case "call_function parity" `Quick
           test_call_function_parity;
         Alcotest.test_case "sdbt register cache parity" `Quick
           test_sdbt_rcache_parity ]);
      ("corpus parity", corpus_cases) ]
